#include "core/learner.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "core/grad_metrics.hpp"
#include "nn/adam.hpp"
#include "parallel/pool.hpp"
#include "reach/batch.hpp"
#include "reach/grad_flowpipe.hpp"
#include "reach/tm_flowpipe.hpp"

namespace dwv::core {

using linalg::Vec;

std::string to_string(MetricKind m) {
  return m == MetricKind::kGeometric ? "geometric" : "wasserstein";
}

LearnerOptions LearnerOptions::validated() const {
  assert(perturbation > 0.0 && "SPSA perturbation must be positive");
  assert(step_size > 0.0 && "ascent step size must be positive");
  LearnerOptions v = *this;
  v.spsa_samples = std::max<std::size_t>(1, v.spsa_samples);
  return v;
}

Learner::Learner(reach::VerifierPtr verifier, ode::ReachAvoidSpec spec,
                 LearnerOptions opt)
    : verifier_(std::move(verifier)),
      spec_(std::move(spec)),
      opt_(opt.validated()) {
  // A caller-supplied CachingVerifier is adopted as-is (its cache may be
  // shared with a subdivider or Algorithm 2); otherwise opt_.cache wraps
  // the verifier here so every probe/iterate evaluation below memoizes.
  if (const auto* cv =
          dynamic_cast<const reach::CachingVerifier*>(verifier_.get())) {
    cache_ = cv->cache();
  } else if (opt_.cache || !opt_.cache_dir.empty()) {
    reach::FlowpipeCache::Config cfg;
    cfg.capacity = opt_.cache_capacity;
    cfg.shards = opt_.cache_shards;
    cfg.dir = opt_.cache_dir;
    auto cached =
        std::make_shared<const reach::CachingVerifier>(verifier_, cfg);
    cache_ = cached->cache();
    verifier_ = std::move(cached);
  }
}

Learner::MetricPair Learner::measure(const reach::Flowpipe& fp) const {
  MetricPair m;
  if (!fp.valid) {
    if (opt_.metric == MetricKind::kGeometric) {
      const GeometricMetrics p = geometric_penalty(spec_, fp);
      m.d_u = p.d_u;
      m.d_g = p.d_g;
    } else {
      const WassersteinMetrics p = wasserstein_penalty(spec_, fp);
      m.d_u = p.w_unsafe;
      m.d_g = -p.w_goal;
    }
    m.feasible = false;
    return m;
  }

  if (opt_.metric == MetricKind::kGeometric) {
    const GeometricMetrics g = geometric_metrics(fp, spec_);
    m.d_u = g.d_u;
    m.d_g = g.d_g;
    m.feasible = g.feasible();
  } else {
    const WassersteinMetrics w = wasserstein_metrics(fp, spec_, opt_.wopt);
    // Larger-is-better orientation: repel from Xu, attract to Xg.
    m.d_u = w.w_unsafe;
    m.d_g = -w.w_goal;
    const FlowpipeFacts facts = analyze_flowpipe(fp, spec_);
    m.feasible = facts.touches_goal && facts.safe_certified;
  }
  return m;
}

IterationRecord Learner::evaluate(const nn::Controller& ctrl) const {
  const reach::Flowpipe fp = verifier_->compute(spec_.x0, ctrl);
  IterationRecord rec;
  if (fp.valid) {
    rec.geo = geometric_metrics(fp, spec_);
    rec.wass = wasserstein_metrics(fp, spec_, opt_.wopt);
  } else {
    rec.geo = geometric_penalty(spec_, fp);
    rec.wass = wasserstein_penalty(spec_, fp);
  }
  rec.feasible = measure(fp).feasible;
  return rec;
}

const reach::TmVerifier* Learner::grad_target() const {
  const reach::Verifier* v = verifier_.get();
  if (const auto* cv = dynamic_cast<const reach::CachingVerifier*>(v)) {
    v = cv->inner().get();
  }
  return dynamic_cast<const reach::TmVerifier*>(v);
}

LearnResult Learner::learn_grad(nn::Controller& ctrl,
                                const reach::TmVerifier& tv) const {
  std::mt19937_64 rng(opt_.seed);
  std::normal_distribution<double> reinit(0.0, opt_.restart_scale);

  LearnResult res;
  const std::size_t d = ctrl.param_count();
  nn::Adam adam(d, opt_.adam_lr);

  const reach::TmGradient engine(tv);

  // Per-run memo of dual passes: averaged restarts and stalled ascent
  // revisit parameter vectors exactly, and the dual pass is deterministic.
  // The key id is the verifier's cache salt XOR a gradient tag, so dual
  // results can never alias the scalar flowpipe entries sharing the
  // process-wide cache.
  const std::uint64_t grad_id = tv.cache_salt() ^ 0x6477762d67726164ull;
  struct KeyHash {
    std::size_t operator()(const reach::FlowpipeCache::Key& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };
  std::unordered_map<reach::FlowpipeCache::Key, reach::GradFlowpipe, KeyHash>
      memo;
  const auto* cv =
      dynamic_cast<const reach::CachingVerifier*>(verifier_.get());

  const auto timed_grad =
      [&](const nn::Controller& c) -> const reach::GradFlowpipe& {
    const auto key =
        reach::FlowpipeCache::make_key(grad_id, spec_.x0, c.params());
    auto it = memo.find(key);
    if (it == memo.end()) {
      const auto t0 = std::chrono::steady_clock::now();
      reach::GradFlowpipe g = engine.compute(spec_.x0, c);
      const auto t1 = std::chrono::steady_clock::now();
      res.verifier_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
      // The value channel is bit-identical to tv.compute, so the shared
      // flowpipe cache can serve it to scalar callers.
      if (cache_ && cv != nullptr) {
        cache_->insert(cv->key_for(spec_.x0, c), g.fp);
      }
      it = memo.emplace(key, std::move(g)).first;
    }
    ++res.verifier_calls;  // one dual pass is the iterate's verifier call
    return it->second;
  };

  struct MeasureGrad {
    MetricPair m;
    Vec gu, gg;  ///< d(d_u)/d(theta), d(d_g)/d(theta)
  };
  const auto measure_grad = [&](const reach::GradFlowpipe& g) {
    MeasureGrad r{{}, Vec(d), Vec(d)};
    if (!g.fp.valid) {
      if (opt_.metric == MetricKind::kGeometric) {
        const GeometricMetricsGrad p = geometric_penalty_grad(spec_, g);
        r.m.d_u = p.d_u.value;
        r.m.d_g = p.d_g.value;
        for (std::size_t i = 0; i < d; ++i) {
          r.gu[i] = p.d_u.grad[i];
          r.gg[i] = p.d_g.grad[i];
        }
      } else {
        const WassersteinMetricsGrad p = wasserstein_penalty_grad(spec_, g);
        r.m.d_u = p.w_unsafe.value;
        r.m.d_g = -p.w_goal.value;
        for (std::size_t i = 0; i < d; ++i) {
          r.gu[i] = p.w_unsafe.grad[i];
          r.gg[i] = -p.w_goal.grad[i];
        }
      }
      r.m.feasible = false;
      return r;
    }
    if (opt_.metric == MetricKind::kGeometric) {
      const GeometricMetricsGrad gm = geometric_metrics_grad(g, spec_);
      r.m.d_u = gm.d_u.value;
      r.m.d_g = gm.d_g.value;
      r.m.feasible = r.m.d_u > 0.0 && r.m.d_g > 0.0;
      for (std::size_t i = 0; i < d; ++i) {
        r.gu[i] = gm.d_u.grad[i];
        r.gg[i] = gm.d_g.grad[i];
      }
    } else {
      const WassersteinMetricsGrad wm =
          wasserstein_metrics_grad(g, spec_, opt_.wopt);
      r.m.d_u = wm.w_unsafe.value;
      r.m.d_g = -wm.w_goal.value;
      for (std::size_t i = 0; i < d; ++i) {
        r.gu[i] = wm.w_unsafe.grad[i];
        r.gg[i] = -wm.w_goal.grad[i];
      }
      const FlowpipeFacts facts = analyze_flowpipe(g.fp, spec_);
      r.m.feasible = facts.touches_goal && facts.safe_certified;
    }
    return r;
  };

  // Scalar probe for the directional search below: the dual value channel
  // is bit-identical to the scalar verifier, so candidate metrics compare
  // exactly against the dual iterate's without a (more expensive) dual
  // pass. Probes go through verifier_ so they hit the flowpipe cache when
  // one is configured, and they count as verifier calls like SPSA probes.
  const auto timed_probe = [&](const nn::Controller& c) {
    const auto t0 = std::chrono::steady_clock::now();
    reach::Flowpipe fp = verifier_->compute(spec_.x0, c);
    const auto t1 = std::chrono::steady_clock::now();
    res.verifier_seconds += std::chrono::duration<double>(t1 - t0).count();
    ++res.verifier_calls;
    return fp;
  };

  const auto finish = [&]() -> LearnResult& {
    if (cache_) res.cache_stats = cache_->stats();
    return res;
  };

  const std::size_t attempts = std::max<std::size_t>(1, opt_.restarts);
  const std::size_t budget_per_attempt =
      std::max<std::size_t>(1, opt_.max_iters / attempts);

  Vec theta = ctrl.params();
  const auto probe_ctrl = ctrl.clone();
  std::size_t global_iter = 0;
  reach::Flowpipe last_fp;

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      for (std::size_t i = 0; i < d; ++i) theta[i] = reinit(rng);
      ctrl.set_params(theta);
      adam.reset();
    }
    const std::size_t last_of_attempt =
        (attempt + 1 == attempts) ? opt_.max_iters
                                  : (attempt + 1) * budget_per_attempt;

    for (; global_iter <= last_of_attempt; ++global_iter) {
      const reach::GradFlowpipe& g = timed_grad(ctrl);
      const reach::Flowpipe& fp = g.fp;

      IterationRecord rec;
      rec.iter = global_iter;
      if (fp.valid) {
        rec.geo = geometric_metrics(fp, spec_);
        rec.wass = wasserstein_metrics(fp, spec_, opt_.wopt);
      } else {
        rec.geo = geometric_penalty(spec_, fp);
        rec.wass = wasserstein_penalty(spec_, fp);
      }
      const MeasureGrad mg = measure_grad(g);
      rec.feasible = mg.m.feasible;
      if (mg.m.feasible && opt_.require_containment) {
        rec.feasible = analyze_flowpipe(fp, spec_).goal_certified;
      }
      res.history.push_back(rec);

      if (rec.feasible) {
        res.success = true;
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == opt_.max_iters) {
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == last_of_attempt) {
        last_fp = fp;
        break;  // restart
      }

      // Analytic ascent direction on J = alpha d_u + beta d_g (the exact
      // gradient SPSA's difference method estimates).
      Vec grad(d);
      for (std::size_t i = 0; i < d; ++i) {
        grad[i] = opt_.alpha * mg.gu[i] + opt_.beta * mg.gg[i];
      }

      if (opt_.use_adam) {
        theta += adam.step(-1.0 * grad);
      } else {
        // Feasibility-seeking ascent on the two SEPARATE analytic
        // gradients — structure SPSA's scalar difference quotient cannot
        // see. While the pipe violates safety (d_u <= 0), climb d_u; once
        // safe, climb d_g along the direction whose safety-eroding
        // component (negative projection onto grad d_u) is removed, so
        // goal progress does not march back into the unsafe basin. The
        // initial step size predicts the deficient metric's zero crossing
        // first-order (capped at step_size), and an accepted step marches
        // on along the same fixed direction with cheap scalar probes until
        // improvement stops — one dual pass serves several parameter
        // updates. When not even the deepest backtracked step improves,
        // the iterate sits against a basin boundary the gradient points
        // across: take the full step as an escape move.
        const bool unsafe = mg.m.d_u <= 0.0;
        // Late-stage objective for containment-constrained runs: the
        // overlap measure d_g stops being informative once the pipe meets
        // the goal (a fat, partially-overlapping step set scores HIGHER
        // than a contracted, fully-contained one), so once safety AND
        // goal overlap hold, climb the containment margin — distance of
        // the best step set's worst face INTO the goal box — read from
        // the same dual pass. Positive margin IS goal containment. Far
        // from the goal the margin's single binding face zigzags, so the
        // aggregate overlap/distance gradient drives that stage instead.
        Vec margin_dir(d);
        double margin_val = 0.0;
        bool on_margin = false;
        if (!unsafe && mg.m.d_g > 0.0 && opt_.require_containment &&
            g.fp.valid) {
          const MetricGrad cm = goal_containment_margin_grad(g, spec_);
          for (std::size_t i = 0; i < d; ++i) margin_dir[i] = cm.grad[i];
          margin_val = cm.value;
          on_margin = margin_dir.norm_inf() > 0.0;
        }
        Vec dir = unsafe ? mg.gu : (on_margin ? margin_dir : mg.gg);
        if (unsafe && dir.norm_inf() == 0.0) dir = mg.gg;
        // On margin iterations both analytic gradients pin down a proper
        // Newton (SQP) step for the two-constraint local model
        //   gu . delta = 0         (hold the safety level to first order)
        //   gm . delta = deficit   (close the containment gap)
        // solved in span{gu, gm} through the 2x2 Gram system. This walks
        // ALONG the curved safe/contained ridge instead of zigzagging
        // across it — the structural payoff of having separate gradients
        // where SPSA only sees one scalar difference quotient.
        bool sqp = false;
        if (on_margin) {
          double guu = 0.0, gum = 0.0, gmm = 0.0;
          for (std::size_t i = 0; i < d; ++i) {
            guu += mg.gu[i] * mg.gu[i];
            gum += mg.gu[i] * margin_dir[i];
            gmm += margin_dir[i] * margin_dir[i];
          }
          const double det = guu * gmm - gum * gum;
          if (det > 1e-12 * guu * gmm) {
            const double deficit_m = -margin_val + 1e-3;
            const double b = deficit_m * guu / det;
            const double a = -gum * deficit_m / det;
            Vec delta(d);
            for (std::size_t i = 0; i < d; ++i) {
              delta[i] = a * mg.gu[i] + b * margin_dir[i];
            }
            if (delta.norm_inf() > 0.0) {
              dir = delta;
              sqp = true;
            }
          }
        }
        if (!unsafe && !sqp) {
          double uu = 0.0, ug = 0.0;
          for (std::size_t i = 0; i < d; ++i) {
            uu += mg.gu[i] * mg.gu[i];
            ug += mg.gg[i] * mg.gu[i];
          }
          if (uu > 0.0 && ug < 0.0) {
            const double along = ug / uu;
            for (std::size_t i = 0; i < d; ++i) dir[i] -= along * mg.gu[i];
          }
        }
        const double gn = dir.norm_inf();
        if (gn > 0.0) {
          const double step =
              opt_.step_size /
              (1.0 + opt_.step_decay * static_cast<double>(global_iter));
          double s = step;
          if (sqp) {
            // The Newton step's own length, capped against wild
            // extrapolation far outside the local model's validity.
            s = std::min(gn, 4.0 * step);
          } else {
            const Vec& ag = unsafe ? mg.gu : (on_margin ? margin_dir : mg.gg);
            double dd = 0.0;
            for (std::size_t i = 0; i < d; ++i) dd += ag[i] * dir[i];
            dd /= gn;
            const double deficit =
                unsafe ? -mg.m.d_u : (on_margin ? -margin_val : -mg.m.d_g);
            if (dd > 0.0 && deficit > 0.0) {
              s = std::min(step, 2.0 * deficit / dd);
            }
          }
          bool moved = false;
          double cu = mg.m.d_u;
          // The goal-side acceptance value tracks whichever objective the
          // direction climbs: the containment margin on margin iterations,
          // the overlap measure otherwise.
          double cg = on_margin ? margin_val : mg.m.d_g;
          for (int bt = 0; bt < 8; ++bt) {
            const Vec cand = theta + (s / gn) * dir;
            probe_ctrl->set_params(cand);
            const reach::Flowpipe pfp = timed_probe(*probe_ctrl);
            const MetricPair pm = measure(pfp);
            // A probe that already meets the full success predicate ends
            // the march on the spot: the next dual iterate re-verifies it
            // and returns. Without this, containment-constrained runs keep
            // optimizing the metrics long after a certified candidate
            // slipped past mid-march.
            if (pm.feasible && pfp.valid &&
                (!opt_.require_containment ||
                 analyze_flowpipe(pfp, spec_).goal_certified)) {
              theta = cand;
              moved = true;
              break;
            }
            const double pg =
                on_margin ? goal_containment_margin(pfp, spec_) : pm.d_g;
            const bool ok = cu <= 0.0 ? pm.d_u > cu : (pm.d_u > 0.0 && pg > cg);
            if (ok) {
              theta = cand;
              moved = true;
              cu = pm.d_u;
              cg = pg;
              continue;  // march on along the same direction
            }
            if (moved) break;  // first failed continuation ends the march
            s *= 0.5;
          }
          if (!moved) theta += (step / gn) * dir;
        }
      }
      ctrl.set_params(theta);
    }
  }
  res.iterations = std::min(global_iter, opt_.max_iters);
  if (!res.history.empty()) res.final_flowpipe = std::move(last_fp);
  return finish();
}

LearnResult Learner::learn(nn::Controller& ctrl) const {
  if (opt_.grad) {
    const reach::TmVerifier* tv = grad_target();
    const char* why =
        tv == nullptr
            ? "verifier is not a Taylor-model verifier"
            : reach::TmGradient::unsupported_reason(*tv, ctrl);
    if (why == nullptr && opt_.metric == MetricKind::kWasserstein &&
        opt_.wopt.use_sinkhorn) {
      why = "Sinkhorn Wasserstein provides no exact transport plan";
    }
    if (why == nullptr) return learn_grad(ctrl, *tv);
    std::fprintf(stderr,
                 "dwv: analytic gradient unavailable (%s); "
                 "falling back to SPSA\n",
                 why);
  }

  std::mt19937_64 rng(opt_.seed);
  std::bernoulli_distribution coin(0.5);
  std::normal_distribution<double> reinit(0.0, opt_.restart_scale);

  LearnResult res;
  const std::size_t d = ctrl.param_count();
  nn::Adam adam(d, opt_.adam_lr);

  const auto timed_compute = [&](const nn::Controller& c) {
    const auto t0 = std::chrono::steady_clock::now();
    reach::Flowpipe fp = verifier_->compute(spec_.x0, c);
    const auto t1 = std::chrono::steady_clock::now();
    res.verifier_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++res.verifier_calls;
    return fp;
  };

  const auto objective = [&](const MetricPair& m) {
    return opt_.alpha * m.d_u + opt_.beta * m.d_g;
  };

  // Stamps the cache counters onto the result at every return site (the
  // cache is cumulative across learn() calls on a shared verifier; the
  // snapshot reports its state at the end of this run).
  const auto finish = [&]() -> LearnResult& {
    if (cache_) res.cache_stats = cache_->stats();
    return res;
  };

  // Evaluates a batch of probe parameter vectors, concurrently when
  // opt_.threads allows. Each task clones the controller and writes into
  // its own index slot; timing and call counts are folded back here in
  // index order, so serial and parallel runs agree bitwise on everything
  // the gradient consumes. With opt_.batch != 1 and a lane-capable
  // verifier, probes go through the SoA batch engine in groups of the
  // lane width — same per-probe arithmetic, so the objectives (and hence
  // theta) match the per-probe path bit for bit.
  const reach::BatchVerifier bv(verifier_.get(), opt_.batch);
  const auto measure_probes = [&](const std::vector<Vec>& thetas) {
    std::vector<double> obj(thetas.size());
    std::vector<double> secs(thetas.size());
    if (bv.batched()) {
      const std::size_t width = bv.batch();
      const std::size_t groups = (thetas.size() + width - 1) / width;
      parallel::parallel_for(opt_.threads, groups, [&](std::size_t g) {
        const std::size_t lo = g * width;
        const std::size_t hi = std::min(lo + width, thetas.size());
        std::vector<nn::ControllerPtr> probes;
        std::vector<reach::BatchJob> jobs;
        probes.reserve(hi - lo);
        jobs.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          probes.push_back(ctrl.clone());
          probes.back()->set_params(thetas[i]);
          jobs.push_back({spec_.x0, probes.back().get()});
        }
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<reach::Flowpipe> fps = bv.compute(jobs);
        const auto t1 = std::chrono::steady_clock::now();
        // Whole-group wall time charged to the group's first slot.
        secs[lo] = std::chrono::duration<double>(t1 - t0).count();
        for (std::size_t i = lo; i < hi; ++i)
          obj[i] = objective(measure(fps[i - lo]));
      });
    } else {
      parallel::parallel_for(
          opt_.threads, thetas.size(), [&](std::size_t i) {
            auto probe = ctrl.clone();
            probe->set_params(thetas[i]);
            const auto t0 = std::chrono::steady_clock::now();
            const reach::Flowpipe fp = verifier_->compute(spec_.x0, *probe);
            const auto t1 = std::chrono::steady_clock::now();
            secs[i] = std::chrono::duration<double>(t1 - t0).count();
            obj[i] = objective(measure(fp));
          });
    }
    for (double s : secs) res.verifier_seconds += s;
    res.verifier_calls += thetas.size();
    return obj;
  };

  const std::size_t attempts = std::max<std::size_t>(1, opt_.restarts);
  const std::size_t budget_per_attempt =
      std::max<std::size_t>(1, opt_.max_iters / attempts);

  Vec theta = ctrl.params();
  std::size_t global_iter = 0;
  // Last flowpipe of a main (unperturbed) iterate; reported when every
  // restart is exhausted so callers still see the final reachable set.
  reach::Flowpipe last_fp;

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Random re-initialization (Algorithm 1 line 1).
      for (std::size_t i = 0; i < d; ++i) theta[i] = reinit(rng);
      ctrl.set_params(theta);
      adam.reset();
    }
    const std::size_t last_of_attempt =
        (attempt + 1 == attempts) ? opt_.max_iters
                                  : (attempt + 1) * budget_per_attempt;

    for (; global_iter <= last_of_attempt; ++global_iter) {
      const reach::Flowpipe fp = timed_compute(ctrl);

      IterationRecord rec;
      rec.iter = global_iter;
      if (fp.valid) {
        rec.geo = geometric_metrics(fp, spec_);
        rec.wass = wasserstein_metrics(fp, spec_, opt_.wopt);
      } else {
        rec.geo = geometric_penalty(spec_, fp);
        rec.wass = wasserstein_penalty(spec_, fp);
      }
      const MetricPair m = measure(fp);
      rec.feasible = m.feasible;
      if (m.feasible && opt_.require_containment) {
        rec.feasible = analyze_flowpipe(fp, spec_).goal_certified;
      }
      res.history.push_back(rec);

      if (rec.feasible) {
        res.success = true;
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == opt_.max_iters) {
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == last_of_attempt) {
        last_fp = fp;
        break;  // restart
      }

      // --- Difference-method gradient approximation (Eq. 5) ---
      // With a shared perturbation p, Algorithm 1's line-6 update
      // theta += alpha grad(d_u) + beta grad(d_g) equals SPSA ascent on
      // the combined objective J = alpha d_u + beta d_g.
      //
      // Every probe below is an independent verifier call, so the batch is
      // evaluated through measure_probes (parallel when opt_.threads > 1).
      // All RNG draws happen up front on this thread, in the same order
      // the serial code consumed them, and the gradient is accumulated in
      // sample order — bit-identical results at any thread count.
      const double p = opt_.perturbation;
      Vec grad(d);
      switch (opt_.gradient) {
        case GradientMode::kSpsa:
        case GradientMode::kSpsaAveraged: {
          const std::size_t samples =
              opt_.gradient == GradientMode::kSpsaAveraged ? opt_.spsa_samples
                                                           : 1;
          std::vector<Vec> deltas(samples, Vec(d));
          for (Vec& delta : deltas)
            for (std::size_t i = 0; i < d; ++i)
              delta[i] = coin(rng) ? 1.0 : -1.0;
          std::vector<Vec> thetas;
          thetas.reserve(2 * samples);
          for (const Vec& delta : deltas) {
            Vec tp = theta;
            Vec tm = theta;
            for (std::size_t i = 0; i < d; ++i) {
              tp[i] += p * delta[i];
              tm[i] -= p * delta[i];
            }
            thetas.push_back(std::move(tp));
            thetas.push_back(std::move(tm));
          }
          const std::vector<double> j = measure_probes(thetas);
          for (std::size_t s = 0; s < samples; ++s) {
            const double jp = j[2 * s];
            const double jm = j[2 * s + 1];
            for (std::size_t i = 0; i < d; ++i) {
              grad[i] += (jp - jm) / (2.0 * p * deltas[s][i]);
            }
          }
          if (opt_.gradient == GradientMode::kSpsaAveraged) {
            grad /= static_cast<double>(samples);
          }
          break;
        }
        case GradientMode::kCoordinate: {
          std::vector<Vec> thetas;
          thetas.reserve(2 * d);
          for (std::size_t i = 0; i < d; ++i) {
            Vec tp = theta;
            Vec tm = theta;
            tp[i] += p;
            tm[i] -= p;
            thetas.push_back(std::move(tp));
            thetas.push_back(std::move(tm));
          }
          const std::vector<double> j = measure_probes(thetas);
          for (std::size_t i = 0; i < d; ++i) {
            grad[i] = (j[2 * i] - j[2 * i + 1]) / (2.0 * p);
          }
          break;
        }
      }

      // Ascent step (Algorithm 1 line 6).
      if (opt_.use_adam) {
        theta += adam.step(-1.0 * grad);  // Adam descends; negate.
      } else {
        const double gn = grad.norm_inf();
        if (gn > 0.0) {
          const double step =
              opt_.step_size /
              (1.0 + opt_.step_decay * static_cast<double>(global_iter));
          theta += (step / gn) * grad;
        }
      }
      ctrl.set_params(theta);
    }
  }
  res.iterations = std::min(global_iter, opt_.max_iters);
  // All restarts exhausted: report the last real flowpipe (not a blank
  // default) so export/plot consumers still see the final reachable set.
  if (!res.history.empty()) res.final_flowpipe = std::move(last_fp);
  return finish();
}

}  // namespace dwv::core
