#include "core/learner.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "nn/adam.hpp"
#include "parallel/pool.hpp"
#include "reach/batch.hpp"

namespace dwv::core {

using linalg::Vec;

std::string to_string(MetricKind m) {
  return m == MetricKind::kGeometric ? "geometric" : "wasserstein";
}

LearnerOptions LearnerOptions::validated() const {
  assert(perturbation > 0.0 && "SPSA perturbation must be positive");
  assert(step_size > 0.0 && "ascent step size must be positive");
  LearnerOptions v = *this;
  v.spsa_samples = std::max<std::size_t>(1, v.spsa_samples);
  return v;
}

Learner::Learner(reach::VerifierPtr verifier, ode::ReachAvoidSpec spec,
                 LearnerOptions opt)
    : verifier_(std::move(verifier)),
      spec_(std::move(spec)),
      opt_(opt.validated()) {
  // A caller-supplied CachingVerifier is adopted as-is (its cache may be
  // shared with a subdivider or Algorithm 2); otherwise opt_.cache wraps
  // the verifier here so every probe/iterate evaluation below memoizes.
  if (const auto* cv =
          dynamic_cast<const reach::CachingVerifier*>(verifier_.get())) {
    cache_ = cv->cache();
  } else if (opt_.cache) {
    reach::FlowpipeCache::Config cfg;
    cfg.capacity = opt_.cache_capacity;
    cfg.shards = opt_.cache_shards;
    auto cached =
        std::make_shared<const reach::CachingVerifier>(verifier_, cfg);
    cache_ = cached->cache();
    verifier_ = std::move(cached);
  }
}

Learner::MetricPair Learner::measure(const reach::Flowpipe& fp) const {
  MetricPair m;
  if (!fp.valid) {
    if (opt_.metric == MetricKind::kGeometric) {
      const GeometricMetrics p = geometric_penalty(spec_, fp);
      m.d_u = p.d_u;
      m.d_g = p.d_g;
    } else {
      const WassersteinMetrics p = wasserstein_penalty(spec_, fp);
      m.d_u = p.w_unsafe;
      m.d_g = -p.w_goal;
    }
    m.feasible = false;
    return m;
  }

  if (opt_.metric == MetricKind::kGeometric) {
    const GeometricMetrics g = geometric_metrics(fp, spec_);
    m.d_u = g.d_u;
    m.d_g = g.d_g;
    m.feasible = g.feasible();
  } else {
    const WassersteinMetrics w = wasserstein_metrics(fp, spec_, opt_.wopt);
    // Larger-is-better orientation: repel from Xu, attract to Xg.
    m.d_u = w.w_unsafe;
    m.d_g = -w.w_goal;
    const FlowpipeFacts facts = analyze_flowpipe(fp, spec_);
    m.feasible = facts.touches_goal && facts.safe_certified;
  }
  return m;
}

IterationRecord Learner::evaluate(const nn::Controller& ctrl) const {
  const reach::Flowpipe fp = verifier_->compute(spec_.x0, ctrl);
  IterationRecord rec;
  if (fp.valid) {
    rec.geo = geometric_metrics(fp, spec_);
    rec.wass = wasserstein_metrics(fp, spec_, opt_.wopt);
  } else {
    rec.geo = geometric_penalty(spec_, fp);
    rec.wass = wasserstein_penalty(spec_, fp);
  }
  rec.feasible = measure(fp).feasible;
  return rec;
}

LearnResult Learner::learn(nn::Controller& ctrl) const {
  std::mt19937_64 rng(opt_.seed);
  std::bernoulli_distribution coin(0.5);
  std::normal_distribution<double> reinit(0.0, opt_.restart_scale);

  LearnResult res;
  const std::size_t d = ctrl.param_count();
  nn::Adam adam(d, opt_.adam_lr);

  const auto timed_compute = [&](const nn::Controller& c) {
    const auto t0 = std::chrono::steady_clock::now();
    reach::Flowpipe fp = verifier_->compute(spec_.x0, c);
    const auto t1 = std::chrono::steady_clock::now();
    res.verifier_seconds +=
        std::chrono::duration<double>(t1 - t0).count();
    ++res.verifier_calls;
    return fp;
  };

  const auto objective = [&](const MetricPair& m) {
    return opt_.alpha * m.d_u + opt_.beta * m.d_g;
  };

  // Stamps the cache counters onto the result at every return site (the
  // cache is cumulative across learn() calls on a shared verifier; the
  // snapshot reports its state at the end of this run).
  const auto finish = [&]() -> LearnResult& {
    if (cache_) res.cache_stats = cache_->stats();
    return res;
  };

  // Evaluates a batch of probe parameter vectors, concurrently when
  // opt_.threads allows. Each task clones the controller and writes into
  // its own index slot; timing and call counts are folded back here in
  // index order, so serial and parallel runs agree bitwise on everything
  // the gradient consumes. With opt_.batch != 1 and a lane-capable
  // verifier, probes go through the SoA batch engine in groups of the
  // lane width — same per-probe arithmetic, so the objectives (and hence
  // theta) match the per-probe path bit for bit.
  const reach::BatchVerifier bv(verifier_.get(), opt_.batch);
  const auto measure_probes = [&](const std::vector<Vec>& thetas) {
    std::vector<double> obj(thetas.size());
    std::vector<double> secs(thetas.size());
    if (bv.batched()) {
      const std::size_t width = bv.batch();
      const std::size_t groups = (thetas.size() + width - 1) / width;
      parallel::parallel_for(opt_.threads, groups, [&](std::size_t g) {
        const std::size_t lo = g * width;
        const std::size_t hi = std::min(lo + width, thetas.size());
        std::vector<nn::ControllerPtr> probes;
        std::vector<reach::BatchJob> jobs;
        probes.reserve(hi - lo);
        jobs.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          probes.push_back(ctrl.clone());
          probes.back()->set_params(thetas[i]);
          jobs.push_back({spec_.x0, probes.back().get()});
        }
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<reach::Flowpipe> fps = bv.compute(jobs);
        const auto t1 = std::chrono::steady_clock::now();
        // Whole-group wall time charged to the group's first slot.
        secs[lo] = std::chrono::duration<double>(t1 - t0).count();
        for (std::size_t i = lo; i < hi; ++i)
          obj[i] = objective(measure(fps[i - lo]));
      });
    } else {
      parallel::parallel_for(
          opt_.threads, thetas.size(), [&](std::size_t i) {
            auto probe = ctrl.clone();
            probe->set_params(thetas[i]);
            const auto t0 = std::chrono::steady_clock::now();
            const reach::Flowpipe fp = verifier_->compute(spec_.x0, *probe);
            const auto t1 = std::chrono::steady_clock::now();
            secs[i] = std::chrono::duration<double>(t1 - t0).count();
            obj[i] = objective(measure(fp));
          });
    }
    for (double s : secs) res.verifier_seconds += s;
    res.verifier_calls += thetas.size();
    return obj;
  };

  const std::size_t attempts = std::max<std::size_t>(1, opt_.restarts);
  const std::size_t budget_per_attempt =
      std::max<std::size_t>(1, opt_.max_iters / attempts);

  Vec theta = ctrl.params();
  std::size_t global_iter = 0;
  // Last flowpipe of a main (unperturbed) iterate; reported when every
  // restart is exhausted so callers still see the final reachable set.
  reach::Flowpipe last_fp;

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Random re-initialization (Algorithm 1 line 1).
      for (std::size_t i = 0; i < d; ++i) theta[i] = reinit(rng);
      ctrl.set_params(theta);
      adam.reset();
    }
    const std::size_t last_of_attempt =
        (attempt + 1 == attempts) ? opt_.max_iters
                                  : (attempt + 1) * budget_per_attempt;

    for (; global_iter <= last_of_attempt; ++global_iter) {
      const reach::Flowpipe fp = timed_compute(ctrl);

      IterationRecord rec;
      rec.iter = global_iter;
      if (fp.valid) {
        rec.geo = geometric_metrics(fp, spec_);
        rec.wass = wasserstein_metrics(fp, spec_, opt_.wopt);
      } else {
        rec.geo = geometric_penalty(spec_, fp);
        rec.wass = wasserstein_penalty(spec_, fp);
      }
      const MetricPair m = measure(fp);
      rec.feasible = m.feasible;
      if (m.feasible && opt_.require_containment) {
        rec.feasible = analyze_flowpipe(fp, spec_).goal_certified;
      }
      res.history.push_back(rec);

      if (rec.feasible) {
        res.success = true;
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == opt_.max_iters) {
        res.iterations = global_iter;
        res.final_flowpipe = fp;
        return finish();
      }
      if (global_iter == last_of_attempt) {
        last_fp = fp;
        break;  // restart
      }

      // --- Difference-method gradient approximation (Eq. 5) ---
      // With a shared perturbation p, Algorithm 1's line-6 update
      // theta += alpha grad(d_u) + beta grad(d_g) equals SPSA ascent on
      // the combined objective J = alpha d_u + beta d_g.
      //
      // Every probe below is an independent verifier call, so the batch is
      // evaluated through measure_probes (parallel when opt_.threads > 1).
      // All RNG draws happen up front on this thread, in the same order
      // the serial code consumed them, and the gradient is accumulated in
      // sample order — bit-identical results at any thread count.
      const double p = opt_.perturbation;
      Vec grad(d);
      switch (opt_.gradient) {
        case GradientMode::kSpsa:
        case GradientMode::kSpsaAveraged: {
          const std::size_t samples =
              opt_.gradient == GradientMode::kSpsaAveraged ? opt_.spsa_samples
                                                           : 1;
          std::vector<Vec> deltas(samples, Vec(d));
          for (Vec& delta : deltas)
            for (std::size_t i = 0; i < d; ++i)
              delta[i] = coin(rng) ? 1.0 : -1.0;
          std::vector<Vec> thetas;
          thetas.reserve(2 * samples);
          for (const Vec& delta : deltas) {
            Vec tp = theta;
            Vec tm = theta;
            for (std::size_t i = 0; i < d; ++i) {
              tp[i] += p * delta[i];
              tm[i] -= p * delta[i];
            }
            thetas.push_back(std::move(tp));
            thetas.push_back(std::move(tm));
          }
          const std::vector<double> j = measure_probes(thetas);
          for (std::size_t s = 0; s < samples; ++s) {
            const double jp = j[2 * s];
            const double jm = j[2 * s + 1];
            for (std::size_t i = 0; i < d; ++i) {
              grad[i] += (jp - jm) / (2.0 * p * deltas[s][i]);
            }
          }
          if (opt_.gradient == GradientMode::kSpsaAveraged) {
            grad /= static_cast<double>(samples);
          }
          break;
        }
        case GradientMode::kCoordinate: {
          std::vector<Vec> thetas;
          thetas.reserve(2 * d);
          for (std::size_t i = 0; i < d; ++i) {
            Vec tp = theta;
            Vec tm = theta;
            tp[i] += p;
            tm[i] -= p;
            thetas.push_back(std::move(tp));
            thetas.push_back(std::move(tm));
          }
          const std::vector<double> j = measure_probes(thetas);
          for (std::size_t i = 0; i < d; ++i) {
            grad[i] = (j[2 * i] - j[2 * i + 1]) / (2.0 * p);
          }
          break;
        }
      }

      // Ascent step (Algorithm 1 line 6).
      if (opt_.use_adam) {
        theta += adam.step(-1.0 * grad);  // Adam descends; negate.
      } else {
        const double gn = grad.norm_inf();
        if (gn > 0.0) {
          const double step =
              opt_.step_size /
              (1.0 + opt_.step_decay * static_cast<double>(global_iter));
          theta += (step / gn) * grad;
        }
      }
      ctrl.set_params(theta);
    }
  }
  res.iterations = std::min(global_iter, opt_.max_iters);
  // All restarts exhausted: report the last real flowpipe (not a blank
  // default) so export/plot consumers still see the final reachable set.
  if (!res.history.empty()) res.final_flowpipe = std::move(last_fp);
  return finish();
}

}  // namespace dwv::core
