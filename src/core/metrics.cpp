#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/polygon2d.hpp"

namespace dwv::core {

using geom::Box;
using ode::ReachAvoidSpec;
using reach::Flowpipe;

namespace {

// Projects a box onto the listed dimensions.
Box project(const Box& b, const std::vector<std::size_t>& dims) {
  interval::IVec v(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) v[i] = b[dims[i]];
  return Box(v);
}

// True when the spec's set is 2-D in dims {0, 1} and the flowpipe carries
// exact polygons, letting us use polygon geometry instead of boxes.
bool use_polygons(const Flowpipe& fp, const std::vector<std::size_t>& dims) {
  return !fp.step_polys.empty() && dims.size() == 2 && dims[0] == 0 &&
         dims[1] == 1;
}

// Bounded rectangle for a possibly-unbounded 2-D set (clipped to bounds).
geom::Polygon2d clipped_rect(const Box& set, const Box& bounds) {
  const auto inter = set.intersection(bounds);
  const Box& b = inter ? *inter : set;
  return geom::Polygon2d::rect(b[0].lo(), b[0].hi(), b[1].lo(), b[1].hi());
}

double characteristic_size(const ReachAvoidSpec& spec) {
  double s = 0.0;
  for (std::size_t i = 0; i < spec.state_bounds.dim(); ++i)
    s = std::max(s, spec.state_bounds[i].width());
  return s;
}

}  // namespace

double geometric_unsafe_distance(const Flowpipe& fp,
                                 const ReachAvoidSpec& spec) {
  const auto& dims = spec.unsafe_dims;

  if (use_polygons(fp, dims)) {
    const geom::Polygon2d unsafe_poly =
        clipped_rect(spec.unsafe, spec.state_bounds);
    double overlap = 0.0;
    double min_d2 = std::numeric_limits<double>::infinity();
    for (const auto& poly : fp.step_polys) {
      const double a = poly.clip(unsafe_poly).area();
      if (a > 0.0) {
        overlap += a;
      } else {
        const double d = poly.distance_to(unsafe_poly);
        min_d2 = std::min(min_d2, d * d);
      }
    }
    // Also account for inter-sample hulls (box-based, conservative).
    for (const auto& hull : fp.interval_hulls) {
      const Box hp = project(hull, dims);
      const Box up = project(spec.unsafe, dims);
      if (const auto inter = hp.intersection(up)) {
        overlap += inter->volume();
      } else {
        const double d = hp.distance_to(up);
        min_d2 = std::min(min_d2, d * d);
      }
    }
    return overlap > 0.0 ? -overlap : min_d2;
  }

  double overlap = 0.0;
  double min_d2 = std::numeric_limits<double>::infinity();
  for (const auto& hull : fp.interval_hulls) {
    const Box hp = project(hull, dims);
    const Box up = project(spec.unsafe, dims);
    if (const auto inter = hp.intersection(up)) {
      overlap += inter->volume();
    } else {
      const double d = hp.distance_to(up);
      min_d2 = std::min(min_d2, d * d);
    }
  }
  return overlap > 0.0 ? -overlap : min_d2;
}

double geometric_goal_distance(const Flowpipe& fp,
                               const ReachAvoidSpec& spec) {
  const auto& dims = spec.goal_dims;

  if (use_polygons(fp, dims)) {
    const geom::Polygon2d goal_poly =
        clipped_rect(spec.goal, spec.state_bounds);
    double overlap = 0.0;
    double min_d2 = std::numeric_limits<double>::infinity();
    for (const auto& poly : fp.step_polys) {
      const double a = poly.clip(goal_poly).area();
      if (a > 0.0) {
        overlap += a;
      } else {
        const double d = poly.distance_to(goal_poly);
        min_d2 = std::min(min_d2, d * d);
      }
    }
    return overlap > 0.0 ? overlap : -min_d2;
  }

  double overlap = 0.0;
  double min_d2 = std::numeric_limits<double>::infinity();
  for (const auto& step : fp.step_sets) {
    const Box sp = project(step, dims);
    const Box gp = project(spec.goal, dims);
    if (const auto inter = sp.intersection(gp)) {
      overlap += inter->volume();
    } else {
      const double d = sp.distance_to(gp);
      min_d2 = std::min(min_d2, d * d);
    }
  }
  return overlap > 0.0 ? overlap : -min_d2;
}

GeometricMetrics geometric_metrics(const Flowpipe& fp,
                                   const ReachAvoidSpec& spec) {
  return {geometric_unsafe_distance(fp, spec),
          geometric_goal_distance(fp, spec)};
}

double goal_containment_margin(const Flowpipe& fp,
                               const ReachAvoidSpec& spec) {
  double m = -std::numeric_limits<double>::infinity();
  if (!fp.valid) return m;
  for (const auto& step : fp.step_sets) {
    double s = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < step.dim(); ++i) {
      s = std::min(s, std::min(spec.goal[i].hi() - step[i].hi(),
                               step[i].lo() - spec.goal[i].lo()));
    }
    m = std::max(m, s);
  }
  return m;
}

WassersteinMetrics wasserstein_metrics(const Flowpipe& fp,
                                       const ReachAvoidSpec& spec,
                                       const WassersteinOptions& opt) {
  // r_theta: uniform on the last reachable segment X_r^{Tl}.
  const Box last = fp.step_sets.back();

  // Clamp a box into `bounds`: intersection when they overlap, otherwise
  // the nearest face point (keeps the support finite and the distance
  // signal monotone even when the reach set escapes the assumed bounds).
  const auto clamp_into = [](const Box& b, const Box& bounds) {
    interval::IVec v(b.dim());
    for (std::size_t i = 0; i < b.dim(); ++i) {
      double lo = std::max(b[i].lo(), bounds[i].lo());
      double hi = std::min(b[i].hi(), bounds[i].hi());
      if (lo > hi) {
        // Disjoint in this dimension: snap to the nearer bound.
        const double point =
            b[i].lo() > bounds[i].hi() ? bounds[i].hi() : bounds[i].lo();
        lo = hi = point;
      }
      v[i] = interval::Interval(lo, hi);
    }
    return Box(v);
  };

  const auto w1 = [&](const Box& set_box,
                      const std::vector<std::size_t>& dims) {
    // The reach segment is kept as-is (finite for valid pipes) so the
    // distance signal stays monotone even far outside the nominal region;
    // only the spec set is clipped (it may be an unbounded half-space).
    const Box& r_box = last;
    const Box s_box = clamp_into(set_box, spec.state_bounds);

    const auto ra = transport::uniform_on_box_dims(r_box, dims, opt.grid);
    const auto sa = transport::uniform_on_box_dims(s_box, dims, opt.grid);
    // Per-thread solver workspace, reused across learner iterations (and
    // across the goal/unsafe pair of every metric evaluation): same
    // arithmetic, so the distances are bit-identical — only the per-call
    // cost-matrix/scaling-vector allocations are gone.
    thread_local transport::TransportWorkspace ws;
    if (opt.use_sinkhorn)
      return transport::sinkhorn(ra, sa, opt.sinkhorn, ws).cost;
    return transport::w1_exact(ra, sa, ws);
  };

  WassersteinMetrics m;
  m.w_goal = w1(spec.goal, spec.goal_dims);
  m.w_unsafe = w1(spec.unsafe, spec.unsafe_dims);
  return m;
}

namespace {
// Fraction of the horizon a failed pipe covered before blowing up.
double completed_fraction(const ReachAvoidSpec& spec,
                          const Flowpipe& fp) {
  if (spec.steps == 0) return 0.0;
  const double done = static_cast<double>(fp.steps());
  return std::min(1.0, done / static_cast<double>(spec.steps));
}

// Smooth part of the failure penalty: squared distance from the last
// surviving box to the (clipped) goal, so the learner still feels in which
// direction the pipe was heading when it blew up.
double last_box_goal_gap(const ReachAvoidSpec& spec, const Flowpipe& fp) {
  if (fp.step_sets.empty()) return 0.0;
  const Box last = fp.step_sets.back();
  if (!last.bounds().max_mag() || last.bounds().max_mag() > 1e12) return 0.0;
  const auto gc = spec.goal.intersection(spec.state_bounds);
  const Box goal = gc ? *gc : spec.goal;
  return last.distance_to_in(goal, spec.goal_dims);
}
}  // namespace

GeometricMetrics geometric_penalty(const ReachAvoidSpec& spec,
                                   const Flowpipe& fp) {
  const double s = characteristic_size(spec);
  const double grade = 2.0 - completed_fraction(spec, fp);
  const double gap = last_box_goal_gap(spec, fp);
  return {-s * s * grade, -s * s * grade - gap * gap};
}

WassersteinMetrics wasserstein_penalty(const ReachAvoidSpec& spec,
                                       const Flowpipe& fp) {
  const double s = characteristic_size(spec);
  WassersteinMetrics m;
  m.w_goal = s * (2.0 - completed_fraction(spec, fp)) +
             last_box_goal_gap(spec, fp);
  m.w_unsafe = 0.0;
  return m;
}

}  // namespace dwv::core
