// Sharded, checkpointable, anytime X_I search (DESIGN.md §16).
//
// Scales core::search_initial_set beyond one process without giving up
// bit-identity. The refinement tree's heap sequence numbers (root 1,
// children 2s and 2s+1) make every terminal decision globally ordered, so
// the search can be split into K deterministic subtrees — each run by its
// own work-stealing frontier with its own thread pool, in-process or in a
// separate OS process (`dwv search --shard i/K`) — and a merge step that
// replays terminal records in sequence order reproduces the single-process
// InitialSetResult bit for bit: the same certified/rejected lists, the
// same volume accumulation order, every bit of the coverage sum, at any
// K, thread count, or batch width (the PR-5 ordered-replay argument,
// applied across processes).
//
// Checkpointing serializes the frontier (pending cells + sequence numbers
// + recorded symbolic prefixes, schedule tapes included) into an
// append-only checksummed snapshot file at a cell-count cadence; loading
// scans to the last intact snapshot and truncates any torn tail, so a
// kill -9 mid-search resumes to a bit-identical final result (cells
// verified after the last snapshot are simply re-verified — verifiers are
// deterministic pure functions, so the records come out the same).
//
// Anytime mode reports a monotonically growing certified inner
// approximation (coverage lower bound + cells so far) on a progress
// callback at every round boundary; returning false from the callback
// cancels the search and returns the partial result, which is itself a
// sound inner approximation of X_I.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/initial_set.hpp"

namespace dwv::core {

/// Snapshot handed to the anytime progress callback at round boundaries.
struct ShardSearchProgress {
  /// Certified-volume lower bound so far, as a fraction of |X0|.
  /// Monotonically non-decreasing across calls (cells are only ever added
  /// to the certified set, never removed).
  double coverage = 0.0;
  std::size_t certified_cells = 0;
  std::size_t rejected_cells = 0;
  /// Frontier cells not yet decided (0 on the final call).
  std::size_t pending_cells = 0;
  std::size_t verifier_calls = 0;
  /// Rounds completed (a round processes ~checkpoint_every cells).
  std::size_t rounds = 0;
};

/// Return false to cancel: the search stops at this round boundary and
/// returns the partial (anytime) result.
using ShardProgressFn = std::function<bool(const ShardSearchProgress&)>;

struct ShardSearchOptions {
  /// The underlying per-shard search configuration. `base.threads` is the
  /// thread count of EACH shard's work-stealing pool (0 = auto), so an
  /// in-process run uses up to shards * resolve_threads(base.threads)
  /// workers. `base.work_steal` is ignored (shards always work-steal).
  InitialSetOptions base;
  /// Number of deterministic subtree shards K (>= 1).
  std::size_t shards = 1;
  /// Run only shard `shard_index` of K (search_initial_set_shard): the
  /// multi-process mode, one shard per OS process, merged afterwards with
  /// merge_shard_results. kAllShards = run every shard in-process
  /// (search_initial_set_sharded).
  static constexpr std::size_t kAllShards = static_cast<std::size_t>(-1);
  std::size_t shard_index = kAllShards;
  /// Target frontier cells PER SHARD before the deterministic prefix
  /// expansion stops and the tree is partitioned (>= 1; more grain =
  /// better load balance, more duplicated prefix work per process).
  std::size_t prefix_grain = 8;
  /// Append-only snapshot file (empty = no checkpointing). Created when
  /// missing; a valid existing checkpoint of the SAME configuration
  /// resumes the search (a different configuration throws). Torn tails
  /// from a crash mid-append are truncated on load.
  std::string checkpoint_file;
  /// Cell-count cadence of snapshots / progress callbacks: each round
  /// processes about this many cells (exceeded by at most one batch
  /// group), then snapshots and reports. Only bounds rounds when
  /// checkpointing or a progress callback is set; otherwise the search
  /// runs one unbounded round.
  std::size_t checkpoint_every = 256;
  ShardProgressFn progress;
};

/// One terminal decision of the refinement tree. `seq` is the cell's heap
/// sequence number — the global merge key that replays breadth-first
/// emission order.
struct ShardRecord {
  std::uint64_t seq = 0;
  geom::Box box;
  bool certified = false;
};

/// The terminal records of one shard's subtree, plus the material the
/// merge validates: every part of a merge must come from the same search
/// configuration (fingerprint), the same K, and cover each shard index
/// exactly once. Only shard 0 includes the shared prefix-expansion
/// records and calls (every shard recomputes the prefix locally; counting
/// it once keeps merged verifier_calls equal to a single-process run).
struct ShardResult {
  std::uint64_t fingerprint = 0;
  std::uint32_t shards = 1;
  std::uint32_t shard_index = 0;
  bool includes_prefix = false;
  /// False when the shard run was cancelled mid-search (partial records);
  /// merge_shard_results refuses incomplete parts.
  bool complete = true;
  std::uint64_t verifier_calls = 0;
  std::vector<ShardRecord> records;
};

/// Fingerprint of everything that determines the search's terminal
/// records: verifier identity (unwrapping a CachingVerifier — caching
/// cannot change bits), controller architecture + exact parameter bits,
/// the reach-avoid spec, and the result-affecting options (max_depth,
/// check_safety, reuse_parent_prefix). Deliberately EXCLUDES shards,
/// threads, and batch width — those never change bits, so shard files and
/// checkpoints remain mergeable/resumable across them.
std::uint64_t xi_search_fingerprint(const reach::Verifier& verifier,
                                    const ode::ReachAvoidSpec& spec,
                                    const nn::Controller& ctrl,
                                    const InitialSetOptions& base);

/// In-process sharded driver: runs all K shards (each a work-stealing
/// pool) and merges. Bit-identical to search_initial_set at any
/// shards/threads/batch setting. Requires opt.shard_index == kAllShards.
InitialSetResult search_initial_set_sharded(const reach::Verifier& verifier,
                                            const ode::ReachAvoidSpec& spec,
                                            const nn::Controller& ctrl,
                                            const ShardSearchOptions& opt);

/// Multi-process mode: runs only subtree opt.shard_index of opt.shards
/// (the deterministic prefix expansion is recomputed locally, so shard
/// processes need no coordination beyond the final merge).
ShardResult search_initial_set_shard(const reach::Verifier& verifier,
                                     const ode::ReachAvoidSpec& spec,
                                     const nn::Controller& ctrl,
                                     const ShardSearchOptions& opt);

/// Replays the union of the parts' terminal records in global sequence
/// order — bit-identical to the single-process result. Throws
/// std::runtime_error on inconsistent parts (mixed fingerprints or K,
/// missing/duplicate shard indices, incomplete parts, duplicate cells).
InitialSetResult merge_shard_results(const ode::ReachAvoidSpec& spec,
                                     std::vector<ShardResult> parts);

void put(reach::ser::Writer& w, const ShardResult& v);
bool get(reach::ser::Reader& r, ShardResult& out);

// --- Result files (`dwv search --out` / `--merge`) ----------------------
// Single checksummed record behind a magic + version header. Writing the
// same bits produces the same file bytes, so `cmp` on two result files is
// a bit-identity check of the searches that produced them. Loaders throw
// std::runtime_error on I/O errors, foreign files, or corruption.

void save_shard_result_file(const std::string& path, const ShardResult& v);
ShardResult load_shard_result_file(const std::string& path);

void save_initial_set_result_file(const std::string& path,
                                  std::uint64_t fingerprint,
                                  const InitialSetResult& v);
InitialSetResult load_initial_set_result_file(const std::string& path,
                                              std::uint64_t* fingerprint);

}  // namespace dwv::core
