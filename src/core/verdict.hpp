// Formal verdicts from a flowpipe, and the combined "Verified result"
// column of the paper's Table 1 (reach-avoid / Unsafe / Unknown).
#pragma once

#include <string>

#include "nn/controller.hpp"
#include "ode/spec.hpp"
#include "ode/system.hpp"
#include "reach/flowpipe.hpp"
#include "reach/serialize.hpp"
#include "reach/verifier.hpp"

namespace dwv::core {

/// Sound facts extractable from an over-approximated flowpipe.
struct FlowpipeFacts {
  /// The tube provably never meets Xu (=> system is safe from this X0).
  bool safe_certified = false;
  /// Some step set is provably contained in Xg (=> goal-reaching from the
  /// WHOLE analyzed initial box; Algorithm 2 searches sub-boxes otherwise).
  bool goal_certified = false;
  std::size_t goal_step = 0;
  /// The over-approximation touches Xu (safety cannot be concluded).
  bool touches_unsafe = false;
  /// The over-approximation touches Xg at some control instant.
  bool touches_goal = false;
};

FlowpipeFacts analyze_flowpipe(const reach::Flowpipe& fp,
                               const ode::ReachAvoidSpec& spec);

/// Table-1 style verdict.
enum class Verdict {
  kReachAvoid,  ///< formally verified reach-avoid
  kUnsafe,      ///< violation demonstrated (simulation counterexample)
  kUnknown,     ///< over-approximation inconclusive (or verifier failed)
};
std::string to_string(Verdict v);

/// Design-then-verify evaluation of a fixed controller: run the verifier;
/// if safety can't be certified, look for a concrete counterexample by
/// simulation to separate Unsafe from Unknown (the paper's treatment of
/// the DDPG/SVG baselines).
struct VerificationReport {
  Verdict verdict = Verdict::kUnknown;
  FlowpipeFacts facts;
  bool flowpipe_valid = false;
  std::string detail;
  /// Integration counters of the computed flowpipe (TM verifiers only;
  /// zero otherwise). Surfaced by `dwv verify --verbose`.
  reach::TmReachStats tm_stats;
};
VerificationReport verify_controller(const reach::Verifier& verifier,
                                     const ode::System& sys,
                                     const nn::Controller& ctrl,
                                     const ode::ReachAvoidSpec& spec,
                                     std::size_t counterexample_samples = 200,
                                     std::uint64_t seed = 1234);

/// Binary serialization of a report in the reach/serialize.hpp format
/// (DESIGN.md §15) — the record type the verification-as-a-service daemon
/// will persist alongside flowpipes. Same contract as the reach
/// serializers: put() writes exact bits, get() validates and returns
/// false on malformed input.
void put(reach::ser::Writer& w, const VerificationReport& v);
bool get(reach::ser::Reader& r, VerificationReport& out);

}  // namespace dwv::core
