#include "core/search_shard.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/verdict.hpp"
#include "parallel/pool.hpp"
#include "parallel/work_steal.hpp"
#include "reach/batch.hpp"
#include "reach/cache.hpp"
#include "reach/tm_flowpipe.hpp"

namespace dwv::core {

namespace {

namespace ser = reach::ser;

// --- File format constants ----------------------------------------------
// Shard result file:  "DWVXISH1" magic, version, reserved, one framed
// (len + checksum64 + payload) ShardResult record.
// Search result file: "DWVXIRS1" magic, same framing, payload =
// fingerprint + InitialSetResult.
// Checkpoint file:    "DWVCKPT1" magic + configuration-binding header,
// then framed full-state snapshots appended at round boundaries; the LAST
// intact snapshot wins and any torn tail is truncated on load.
constexpr std::uint64_t kShardMagic = 0x3148534958565744ull;   // DWVXISH1
constexpr std::uint64_t kResultMagic = 0x3153524958565744ull;  // DWVXIRS1
constexpr std::uint64_t kCkptMagic = 0x3154504b43565744ull;    // DWVCKPT1
constexpr std::uint32_t kFileVersion = 1;
constexpr std::uint32_t kCkptAllShards = 0xffffffffu;
// magic + version + shards + fingerprint + shard_index.
constexpr std::size_t kCkptHeaderSize = 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kFrameSize = 16;  // len:u64 + checksum:u64

// An undecided frontier cell. `seq` is the heap sequence number (root 1,
// children 2s and 2s+1); `parent` is the parent cell's recorded symbolic
// flowpipe prefix (schedule tape included) when prefix reuse is active.
struct PendingCell {
  geom::Box box;
  std::size_t depth = 0;
  std::uint64_t seq = 0;
  std::shared_ptr<const reach::TmSymbolicPrefix> parent;
};

// The complete resumable search state: terminal records so far + the
// undecided frontier. The anytime counters are derived (recomputed on
// checkpoint load), kept incrementally so the progress coverage is a
// running sum — monotone within and across resumed runs.
struct EngineState {
  std::vector<ShardRecord> records;
  std::vector<PendingCell> pending;
  std::uint64_t calls = 0;
  double certified_volume = 0.0;
  std::size_t certified_cells = 0;
  std::size_t rejected_cells = 0;

  void note(const ShardRecord& r) {
    if (r.certified) {
      certified_volume += r.box.volume();
      ++certified_cells;
    } else {
      ++rejected_cells;
    }
  }
};

const reach::TmVerifier* unwrap_tm(const reach::Verifier& verifier,
                                   bool reuse_parent_prefix) {
  if (!reuse_parent_prefix) return nullptr;
  const auto* tmv = dynamic_cast<const reach::TmVerifier*>(&verifier);
  if (tmv == nullptr) {
    if (const auto* cv =
            dynamic_cast<const reach::CachingVerifier*>(&verifier)) {
      tmv = dynamic_cast<const reach::TmVerifier*>(cv->inner().get());
    }
  }
  return tmv;
}

// --- Snapshot payload ---------------------------------------------------

void put_state(ser::Writer& w, const EngineState& st) {
  w.u64(st.calls);
  w.u64(st.records.size());
  for (const ShardRecord& r : st.records) {
    w.u64(r.seq);
    w.u8(r.certified ? 1 : 0);
    ser::put(w, r.box);
  }
  w.u64(st.pending.size());
  for (const PendingCell& c : st.pending) {
    w.u64(c.seq);
    w.u64(c.depth);
    ser::put(w, c.box);
    w.u8(c.parent != nullptr ? 1 : 0);
    if (c.parent != nullptr) ser::put(w, *c.parent);
  }
}

bool get_state(ser::Reader& r, EngineState& out) {
  out = EngineState{};
  out.calls = r.u64();
  std::uint64_t n = r.count(8 + 1 + 8);  // seq + flag + minimal box
  if (!r.ok()) return false;
  out.records.resize(static_cast<std::size_t>(n));
  for (ShardRecord& rec : out.records) {
    rec.seq = r.u64();
    const std::uint8_t cert = r.u8();
    if (!r.ok() || rec.seq == 0 || cert > 1) return false;
    rec.certified = cert != 0;
    if (!ser::get(r, rec.box)) return false;
    out.note(rec);
  }
  n = r.count(8 + 8 + 8 + 1);  // seq + depth + minimal box + flag
  if (!r.ok()) return false;
  out.pending.resize(static_cast<std::size_t>(n));
  for (PendingCell& c : out.pending) {
    c.seq = r.u64();
    c.depth = static_cast<std::size_t>(r.u64());
    if (!r.ok() || c.seq == 0 || c.depth > kMaxSearchDepth) return false;
    if (!ser::get(r, c.box)) return false;
    const std::uint8_t has_prefix = r.u8();
    if (!r.ok() || has_prefix > 1) return false;
    if (has_prefix != 0) {
      reach::TmSymbolicPrefix prefix;
      if (!ser::get(r, prefix)) return false;
      c.parent =
          std::make_shared<const reach::TmSymbolicPrefix>(std::move(prefix));
    }
  }
  return r.ok() && r.remaining() == 0;
}

// --- POSIX helpers ------------------------------------------------------

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      throw std::runtime_error("error: short write to checkpoint file " +
                               path);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

ser::Bytes read_whole_file(const std::string& path, bool* exists) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (exists != nullptr) {
      *exists = false;
      return {};
    }
    throw std::runtime_error("cannot open " + path);
  }
  if (exists != nullptr) *exists = true;
  ser::Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw std::runtime_error("cannot read " + path);
  return data;
}

void write_whole_file(const std::string& path, const ser::Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot create " + path);
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  if (std::fclose(f) != 0 || !ok) {
    throw std::runtime_error("cannot write " + path);
  }
}

// --- Checkpoint file ----------------------------------------------------
// Append-only: a fixed header binding the file to one search configuration
// (fingerprint + shard layout), then framed snapshots. Loading scans
// forward, keeps the LAST snapshot whose length, checksum, and payload all
// validate, and truncates everything after it (the torn tail a kill -9
// mid-append leaves behind). Appends are a single write(), so an
// interrupted append can only damage the tail, never an older snapshot.
class CheckpointFile {
 public:
  CheckpointFile(const std::string& path, std::uint64_t fingerprint,
                 std::uint32_t shards, std::uint32_t shard_index)
      : path_(path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      throw std::runtime_error("cannot open checkpoint file " + path);
    }
    const ser::Bytes data = read_whole_file(path, nullptr);
    if (data.empty()) {
      ser::Writer w;
      w.u64(kCkptMagic);
      w.u32(kFileVersion);
      w.u32(shards);
      w.u64(fingerprint);
      w.u32(shard_index);
      write_all(fd_, w.bytes().data(), w.bytes().size(), path_);
      return;
    }
    if (data.size() < kCkptHeaderSize) {
      throw std::runtime_error("checkpoint file " + path +
                               " is truncated mid-header; delete it to "
                               "restart the search");
    }
    ser::Reader h(data.data(), kCkptHeaderSize);
    if (h.u64() != kCkptMagic || h.u32() != kFileVersion) {
      throw std::runtime_error(path + " is not a dwv checkpoint file");
    }
    if (h.u32() != shards || h.u64() != fingerprint ||
        h.u32() != shard_index) {
      throw std::runtime_error(
          "checkpoint file " + path +
          " was written by a different search configuration (verifier, "
          "controller, spec, depth, or shard layout); delete it to restart");
    }
    // Scan to the last intact snapshot; truncate anything after it.
    std::size_t pos = kCkptHeaderSize;
    std::size_t valid_end = kCkptHeaderSize;
    while (data.size() - pos >= kFrameSize) {
      ser::Reader fr(data.data() + pos, kFrameSize);
      const std::uint64_t len = fr.u64();
      const std::uint64_t sum = fr.u64();
      if (len > data.size() - pos - kFrameSize) break;
      const std::uint8_t* payload = data.data() + pos + kFrameSize;
      if (ser::checksum64(payload, static_cast<std::size_t>(len)) != sum) {
        break;
      }
      ser::Reader pr(payload, static_cast<std::size_t>(len));
      EngineState cand;
      if (!get_state(pr, cand)) break;
      state_ = std::move(cand);
      loaded_ = true;
      pos += kFrameSize + static_cast<std::size_t>(len);
      valid_end = pos;
    }
    if (valid_end != data.size()) {
      if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
        throw std::runtime_error("cannot truncate torn checkpoint tail of " +
                                 path_);
      }
    }
  }

  ~CheckpointFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  CheckpointFile(const CheckpointFile&) = delete;
  CheckpointFile& operator=(const CheckpointFile&) = delete;

  bool has_snapshot() const { return loaded_; }
  EngineState take_state() { return std::move(state_); }

  void append(const EngineState& st) {
    ser::Writer pw;
    put_state(pw, st);
    const ser::Bytes payload = pw.take();
    ser::Writer w;
    w.u64(payload.size());
    w.u64(ser::checksum64(payload.data(), payload.size()));
    ser::Bytes frame = w.take();
    frame.insert(frame.end(), payload.begin(), payload.end());
    write_all(fd_, frame.data(), frame.size(), path_);
  }

 private:
  std::string path_;
  int fd_ = -1;
  bool loaded_ = false;
  EngineState state_;
};

// --- Engine -------------------------------------------------------------

// Deterministic level-synchronous expansion of the shared tree prefix:
// every process expands the same levels from the root, so the frontier at
// the stop point — and therefore the round-robin shard partition of it —
// is a pure function of the search configuration, independent of
// scheduling. Mirrors the level-synchronous path of search_initial_set.
void expand_level(const reach::Verifier& verifier,
                  const ode::ReachAvoidSpec& spec, const nn::Controller& ctrl,
                  const ShardSearchOptions& opt, const reach::TmVerifier* tmv,
                  EngineState& st) {
  const std::size_t n = st.pending.size();
  const std::size_t per_shard = parallel::resolve_threads(opt.base.threads);
  const std::size_t threads =
      opt.shard_index == ShardSearchOptions::kAllShards
          ? per_shard * std::max<std::size_t>(opt.shards, 1)
          : per_shard;
  std::vector<char> certify(n, 0);
  std::vector<std::shared_ptr<const reach::TmSymbolicPrefix>> prefixes(
      tmv != nullptr ? n : 0);
  parallel::parallel_for(threads, n, [&](std::size_t i) {
    reach::Flowpipe fp;
    if (tmv != nullptr) {
      reach::TmComputeResult r = tmv->compute_symbolic(
          st.pending[i].box, ctrl, st.pending[i].parent.get());
      fp = std::move(r.fp);
      prefixes[i] = std::move(r.prefix);
    } else {
      fp = verifier.compute(st.pending[i].box, ctrl);
    }
    const FlowpipeFacts facts = analyze_flowpipe(fp, spec);
    const bool safe_ok = !opt.base.check_safety || facts.safe_certified;
    certify[i] = fp.valid && safe_ok && facts.goal_certified;
  });
  st.calls += n;

  std::vector<PendingCell> next;
  for (std::size_t i = 0; i < n; ++i) {
    PendingCell& cell = st.pending[i];
    if (certify[i]) {
      st.records.push_back({cell.seq, std::move(cell.box), true});
      st.note(st.records.back());
    } else if (cell.depth < opt.base.max_depth) {
      auto [lo, hi] = cell.box.bisect();
      std::shared_ptr<const reach::TmSymbolicPrefix> prefix;
      if (tmv != nullptr) prefix = std::move(prefixes[i]);
      next.push_back({std::move(lo), cell.depth + 1, 2 * cell.seq, prefix});
      next.push_back(
          {std::move(hi), cell.depth + 1, 2 * cell.seq + 1, std::move(prefix)});
    } else {
      st.records.push_back({cell.seq, std::move(cell.box), false});
      st.note(st.records.back());
    }
  }
  st.pending = std::move(next);
}

struct FrontierOut {
  std::vector<ShardRecord> records;
  std::vector<PendingCell> leftovers;
  std::uint64_t calls = 0;
};

// One shard's work-stealing frontier run, bounded by the round budget:
// the body of core::search_initial_set's work-steal scheduler plus a shunt
// — once `budget` cells have been claimed in this round, every further
// popped cell goes, unverified, to the leftover frontier, so the pool
// drains to a quiescent point fit for a snapshot. Which cells land in
// which round is scheduling-dependent; the terminal records are not.
void run_frontier(const reach::Verifier& verifier,
                  const ode::ReachAvoidSpec& spec, const nn::Controller& ctrl,
                  const InitialSetOptions& base, const reach::TmVerifier* tmv,
                  std::vector<PendingCell> roots,
                  std::atomic<std::size_t>& budget, std::size_t budget_limit,
                  FrontierOut& out) {
  struct Cell {
    geom::Box box;
    std::size_t depth;
    std::uint64_t seq;
    std::shared_ptr<const reach::TmSymbolicPrefix> parent;
  };

  const std::size_t threads = parallel::resolve_threads(base.threads);
  const reach::BatchVerifier bv(&verifier, base.batch);
  const std::size_t width = bv.batch();

  std::vector<std::vector<ShardRecord>> records(threads);
  std::vector<std::vector<PendingCell>> leftovers(threads);
  std::atomic<std::size_t> calls{0};

  const auto body = [&](Cell* first, parallel::WorkStealContext<Cell*>& ctx) {
    if (budget.fetch_add(1, std::memory_order_relaxed) >= budget_limit) {
      leftovers[ctx.worker()].push_back({std::move(first->box), first->depth,
                                         first->seq,
                                         std::move(first->parent)});
      delete first;
      return;
    }
    std::vector<Cell*> group{first};
    Cell* extra = nullptr;
    while (group.size() < width && ctx.try_pop(extra)) {
      // Extras ride the group past the budget check (overshoot of at most
      // one batch width per round — the cadence is approximate by design).
      budget.fetch_add(1, std::memory_order_relaxed);
      group.push_back(extra);
    }

    std::vector<reach::Flowpipe> fps(group.size());
    std::vector<std::shared_ptr<const reach::TmSymbolicPrefix>> prefixes(
        tmv != nullptr ? group.size() : 0);
    if (tmv != nullptr) {
      std::vector<reach::TmBatchJob> jobs;
      jobs.reserve(group.size());
      for (const Cell* c : group)
        jobs.push_back({c->box, &ctrl, c->parent.get()});
      std::vector<reach::TmComputeResult> rs =
          tmv->compute_symbolic_batch(jobs, group.size());
      for (std::size_t g = 0; g < group.size(); ++g) {
        fps[g] = std::move(rs[g].fp);
        prefixes[g] = std::move(rs[g].prefix);
      }
    } else {
      std::vector<reach::BatchJob> jobs;
      jobs.reserve(group.size());
      for (const Cell* c : group) jobs.push_back({c->box, &ctrl});
      fps = bv.compute(jobs);
    }

    for (std::size_t g = 0; g < group.size(); ++g) {
      Cell* cell = group[g];
      const FlowpipeFacts facts = analyze_flowpipe(fps[g], spec);
      const bool safe_ok = !base.check_safety || facts.safe_certified;
      const bool certify = fps[g].valid && safe_ok && facts.goal_certified;
      if (certify) {
        records[ctx.worker()].push_back({cell->seq, cell->box, true});
      } else if (cell->depth < base.max_depth) {
        auto [lo, hi] = cell->box.bisect();
        std::shared_ptr<const reach::TmSymbolicPrefix> prefix;
        if (tmv != nullptr) prefix = std::move(prefixes[g]);
        ctx.spawn(
            new Cell{std::move(lo), cell->depth + 1, 2 * cell->seq, prefix});
        ctx.spawn(new Cell{std::move(hi), cell->depth + 1, 2 * cell->seq + 1,
                           std::move(prefix)});
      } else {
        records[ctx.worker()].push_back({cell->seq, cell->box, false});
      }
      delete cell;
    }
    calls.fetch_add(group.size(), std::memory_order_relaxed);
  };

  std::vector<Cell*> rootp;
  rootp.reserve(roots.size());
  for (PendingCell& c : roots) {
    rootp.push_back(
        new Cell{std::move(c.box), c.depth, c.seq, std::move(c.parent)});
  }
  parallel::work_steal_run(threads, rootp, body);

  for (auto& r : records) {
    out.records.insert(out.records.end(), std::make_move_iterator(r.begin()),
                       std::make_move_iterator(r.end()));
  }
  for (auto& l : leftovers) {
    out.leftovers.insert(out.leftovers.end(),
                         std::make_move_iterator(l.begin()),
                         std::make_move_iterator(l.end()));
  }
  out.calls = calls.load(std::memory_order_relaxed);
}

// One round: deal the frontier round-robin to the shard workers (each a
// std::thread driving its own work-stealing pool), run them against a
// shared cell budget, and fold records and leftovers back into the state.
void run_round(const reach::Verifier& verifier, const ode::ReachAvoidSpec& spec,
               const nn::Controller& ctrl, const ShardSearchOptions& opt,
               const reach::TmVerifier* tmv, EngineState& st,
               std::size_t budget_limit) {
  const std::size_t nworkers =
      opt.shard_index == ShardSearchOptions::kAllShards
          ? std::max<std::size_t>(opt.shards, 1)
          : 1;
  std::vector<std::vector<PendingCell>> deal(nworkers);
  for (std::size_t i = 0; i < st.pending.size(); ++i) {
    deal[i % nworkers].push_back(std::move(st.pending[i]));
  }
  st.pending.clear();

  std::atomic<std::size_t> budget{0};
  std::vector<FrontierOut> outs(nworkers);
  const auto run_one = [&](std::size_t w) {
    run_frontier(verifier, spec, ctrl, opt.base, tmv, std::move(deal[w]),
                 budget, budget_limit, outs[w]);
  };
  if (nworkers == 1) {
    run_one(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nworkers - 1);
    for (std::size_t w = 1; w < nworkers; ++w) threads.emplace_back(run_one, w);
    run_one(0);
    for (std::thread& t : threads) t.join();
  }

  for (FrontierOut& o : outs) {
    st.calls += o.calls;
    for (ShardRecord& r : o.records) {
      st.records.push_back(std::move(r));
      st.note(st.records.back());
    }
    st.pending.insert(st.pending.end(),
                      std::make_move_iterator(o.leftovers.begin()),
                      std::make_move_iterator(o.leftovers.end()));
  }
  std::sort(st.pending.begin(), st.pending.end(),
            [](const PendingCell& a, const PendingCell& b) {
              return a.seq < b.seq;
            });
}

ShardSearchProgress make_progress(const ode::ReachAvoidSpec& spec,
                                  const EngineState& st, std::size_t rounds) {
  ShardSearchProgress p;
  const double total = spec.x0.volume();
  p.coverage = total > 0.0 ? st.certified_volume / total : 0.0;
  p.certified_cells = st.certified_cells;
  p.rejected_cells = st.rejected_cells;
  p.pending_cells = st.pending.size();
  p.verifier_calls = static_cast<std::size_t>(st.calls);
  p.rounds = rounds;
  return p;
}

EngineState run_engine(const reach::Verifier& verifier,
                       const ode::ReachAvoidSpec& spec,
                       const nn::Controller& ctrl,
                       const ShardSearchOptions& opt, std::uint64_t fingerprint,
                       const reach::TmVerifier* tmv) {
  validate_search_depth(opt.base.max_depth);
  if (opt.shards == 0) {
    throw std::invalid_argument("ShardSearchOptions::shards must be >= 1");
  }
  const bool one_shard = opt.shard_index != ShardSearchOptions::kAllShards;
  if (one_shard && opt.shard_index >= opt.shards) {
    throw std::invalid_argument("ShardSearchOptions::shard_index " +
                                std::to_string(opt.shard_index) +
                                " out of range for " +
                                std::to_string(opt.shards) + " shards");
  }

  std::unique_ptr<CheckpointFile> ckpt;
  if (!opt.checkpoint_file.empty()) {
    ckpt = std::make_unique<CheckpointFile>(
        opt.checkpoint_file, fingerprint,
        static_cast<std::uint32_t>(opt.shards),
        one_shard ? static_cast<std::uint32_t>(opt.shard_index)
                  : kCkptAllShards);
  }

  EngineState st;
  if (ckpt != nullptr && ckpt->has_snapshot()) {
    st = ckpt->take_state();
  } else {
    st.pending.push_back({spec.x0, 0, 1, nullptr});
    const std::size_t grain = std::max<std::size_t>(opt.prefix_grain, 1);
    const std::size_t target = opt.shards * grain;
    while (!st.pending.empty() && st.pending.size() < target) {
      expand_level(verifier, spec, ctrl, opt, tmv, st);
    }
    if (one_shard) {
      // Round-robin partition of the deterministic prefix frontier; the
      // shared prefix records/calls are reported by shard 0 only, so the
      // merged totals equal a single-process run.
      std::vector<PendingCell> mine;
      for (std::size_t i = 0; i < st.pending.size(); ++i) {
        if (i % opt.shards == opt.shard_index) {
          mine.push_back(std::move(st.pending[i]));
        }
      }
      if (opt.shard_index != 0) {
        st = EngineState{};
      }
      st.pending = std::move(mine);
    }
    if (ckpt != nullptr) ckpt->append(st);
  }

  const bool bounded = ckpt != nullptr || opt.progress != nullptr;
  const std::size_t budget_limit =
      bounded ? std::max<std::size_t>(opt.checkpoint_every, 1)
              : std::numeric_limits<std::size_t>::max();
  std::size_t rounds = 0;
  while (!st.pending.empty()) {
    run_round(verifier, spec, ctrl, opt, tmv, st, budget_limit);
    ++rounds;
    if (ckpt != nullptr) ckpt->append(st);
    if (opt.progress && !opt.progress(make_progress(spec, st, rounds))) {
      break;  // anytime cancel: st holds a sound partial result
    }
  }
  return st;
}

// The ordered-replay finalizer shared with merge_shard_results: sort the
// terminal records by heap sequence number (= breadth-first emission
// order) and accumulate volumes in that order, reproducing every bit of
// search_initial_set's coverage sum.
InitialSetResult finalize_records(std::vector<ShardRecord> records,
                                  double total_volume, std::uint64_t calls) {
  std::sort(records.begin(), records.end(),
            [](const ShardRecord& a, const ShardRecord& b) {
              return a.seq < b.seq;
            });
  InitialSetResult res;
  res.verifier_calls = static_cast<std::size_t>(calls);
  double certified_volume = 0.0;
  for (ShardRecord& r : records) {
    if (r.certified) {
      certified_volume += r.box.volume();
      res.certified.push_back(std::move(r.box));
    } else {
      res.rejected.push_back(std::move(r.box));
    }
  }
  res.coverage = total_volume > 0.0 ? certified_volume / total_volume : 0.0;
  return res;
}

}  // namespace

std::uint64_t xi_search_fingerprint(const reach::Verifier& verifier,
                                    const ode::ReachAvoidSpec& spec,
                                    const nn::Controller& ctrl,
                                    const InitialSetOptions& base) {
  // Caching never changes bits, so a cached and an uncached run of the
  // same search share a fingerprint (and produce identical result files).
  const reach::Verifier* inner = &verifier;
  if (const auto* cv =
          dynamic_cast<const reach::CachingVerifier*>(&verifier)) {
    inner = cv->inner().get();
  }
  ser::Writer w;
  w.str(inner->name());
  w.u64(inner->cache_salt());
  w.str(ctrl.describe());
  const linalg::Vec theta = ctrl.params();
  w.u64(theta.size());
  for (std::size_t i = 0; i < theta.size(); ++i) w.f64(theta[i]);
  ser::put(w, spec.x0);
  ser::put(w, spec.goal);
  ser::put(w, spec.unsafe);
  w.u64(spec.goal_dims.size());
  for (const std::size_t d : spec.goal_dims) w.u64(d);
  w.u64(spec.unsafe_dims.size());
  for (const std::size_t d : spec.unsafe_dims) w.u64(d);
  w.f64(spec.delta);
  w.u64(spec.steps);
  ser::put(w, spec.state_bounds);
  w.u8(spec.stop_at_goal ? 1 : 0);
  w.u64(base.max_depth);
  w.u8(base.check_safety ? 1 : 0);
  w.u8(base.reuse_parent_prefix ? 1 : 0);
  return ser::checksum64(w.bytes().data(), w.bytes().size());
}

InitialSetResult search_initial_set_sharded(const reach::Verifier& verifier,
                                            const ode::ReachAvoidSpec& spec,
                                            const nn::Controller& ctrl,
                                            const ShardSearchOptions& opt) {
  if (opt.shard_index != ShardSearchOptions::kAllShards) {
    throw std::invalid_argument(
        "search_initial_set_sharded runs every shard; use "
        "search_initial_set_shard for a single-shard (multi-process) run");
  }
  const reach::TmVerifier* tmv =
      unwrap_tm(verifier, opt.base.reuse_parent_prefix);
  const std::uint64_t fingerprint =
      xi_search_fingerprint(verifier, spec, ctrl, opt.base);
  EngineState st = run_engine(verifier, spec, ctrl, opt, fingerprint, tmv);
  return finalize_records(std::move(st.records), spec.x0.volume(), st.calls);
}

ShardResult search_initial_set_shard(const reach::Verifier& verifier,
                                     const ode::ReachAvoidSpec& spec,
                                     const nn::Controller& ctrl,
                                     const ShardSearchOptions& opt) {
  if (opt.shard_index == ShardSearchOptions::kAllShards) {
    throw std::invalid_argument(
        "search_initial_set_shard requires an explicit shard_index");
  }
  const reach::TmVerifier* tmv =
      unwrap_tm(verifier, opt.base.reuse_parent_prefix);
  ShardResult sr;
  sr.fingerprint = xi_search_fingerprint(verifier, spec, ctrl, opt.base);
  sr.shards = static_cast<std::uint32_t>(opt.shards);
  sr.shard_index = static_cast<std::uint32_t>(opt.shard_index);
  sr.includes_prefix = opt.shard_index == 0;
  EngineState st = run_engine(verifier, spec, ctrl, opt, sr.fingerprint, tmv);
  sr.complete = st.pending.empty();
  sr.verifier_calls = st.calls;
  sr.records = std::move(st.records);
  return sr;
}

InitialSetResult merge_shard_results(const ode::ReachAvoidSpec& spec,
                                     std::vector<ShardResult> parts) {
  if (parts.empty()) {
    throw std::runtime_error("merge_shard_results: no shard results");
  }
  const std::uint64_t fingerprint = parts.front().fingerprint;
  const std::uint32_t shards = parts.front().shards;
  if (parts.size() != shards) {
    throw std::runtime_error(
        "merge_shard_results: " + std::to_string(parts.size()) +
        " parts for a " + std::to_string(shards) + "-shard search");
  }
  std::vector<char> seen(shards, 0);
  for (const ShardResult& p : parts) {
    if (p.fingerprint != fingerprint || p.shards != shards) {
      throw std::runtime_error(
          "merge_shard_results: parts come from different search "
          "configurations");
    }
    if (p.shard_index >= shards || seen[p.shard_index] != 0) {
      throw std::runtime_error(
          "merge_shard_results: missing or duplicate shard index " +
          std::to_string(p.shard_index));
    }
    seen[p.shard_index] = 1;
    if (!p.complete) {
      throw std::runtime_error("merge_shard_results: shard " +
                               std::to_string(p.shard_index) +
                               " is incomplete (cancelled mid-search)");
    }
    if (p.includes_prefix != (p.shard_index == 0)) {
      throw std::runtime_error(
          "merge_shard_results: prefix records must come from shard 0 "
          "exactly");
    }
  }
  std::vector<ShardRecord> records;
  std::uint64_t calls = 0;
  for (ShardResult& p : parts) {
    calls += p.verifier_calls;
    records.insert(records.end(), std::make_move_iterator(p.records.begin()),
                   std::make_move_iterator(p.records.end()));
  }
  // Terminal cells are distinct tree nodes, so sequence numbers are
  // unique; a duplicate means overlapping parts (e.g. shard files from
  // two runs whose trees overlap, which equal fingerprints should have
  // ruled out — treat it as corruption, not silently double-counted
  // volume).
  std::vector<std::uint64_t> seqs;
  seqs.reserve(records.size());
  for (const ShardRecord& r : records) seqs.push_back(r.seq);
  std::sort(seqs.begin(), seqs.end());
  if (std::adjacent_find(seqs.begin(), seqs.end()) != seqs.end()) {
    throw std::runtime_error(
        "merge_shard_results: duplicate terminal cell across parts");
  }
  return finalize_records(std::move(records), spec.x0.volume(), calls);
}

void put(ser::Writer& w, const ShardResult& v) {
  w.u64(v.fingerprint);
  w.u32(v.shards);
  w.u32(v.shard_index);
  w.u8(v.includes_prefix ? 1 : 0);
  w.u8(v.complete ? 1 : 0);
  w.u64(v.verifier_calls);
  w.u64(v.records.size());
  for (const ShardRecord& r : v.records) {
    w.u64(r.seq);
    w.u8(r.certified ? 1 : 0);
    ser::put(w, r.box);
  }
}

bool get(ser::Reader& r, ShardResult& out) {
  out = ShardResult{};
  out.fingerprint = r.u64();
  out.shards = r.u32();
  out.shard_index = r.u32();
  const std::uint8_t prefix = r.u8();
  const std::uint8_t complete = r.u8();
  out.verifier_calls = r.u64();
  if (!r.ok() || prefix > 1 || complete > 1 || out.shards == 0 ||
      out.shard_index >= out.shards) {
    r.fail();
    return false;
  }
  out.includes_prefix = prefix != 0;
  out.complete = complete != 0;
  const std::uint64_t n = r.count(8 + 1 + 8);
  if (!r.ok()) return false;
  out.records.resize(static_cast<std::size_t>(n));
  for (ShardRecord& rec : out.records) {
    rec.seq = r.u64();
    const std::uint8_t cert = r.u8();
    if (!r.ok() || rec.seq == 0 || cert > 1) {
      r.fail();
      return false;
    }
    rec.certified = cert != 0;
    if (!ser::get(r, rec.box)) return false;
  }
  return r.ok();
}

namespace {

ser::Bytes framed_file_bytes(std::uint64_t magic, const ser::Bytes& payload) {
  ser::Writer w;
  w.u64(magic);
  w.u32(kFileVersion);
  w.u32(0);  // reserved
  w.u64(payload.size());
  w.u64(ser::checksum64(payload.data(), payload.size()));
  ser::Bytes out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

ser::Bytes open_framed_file(const std::string& path, std::uint64_t magic) {
  const ser::Bytes data = read_whole_file(path, nullptr);
  constexpr std::size_t kHeader = 8 + 4 + 4 + kFrameSize;
  if (data.size() < kHeader) {
    throw std::runtime_error(path + ": truncated dwv result file");
  }
  ser::Reader h(data.data(), kHeader);
  if (h.u64() != magic || h.u32() != kFileVersion) {
    throw std::runtime_error(path + ": not the expected dwv result format");
  }
  h.u32();  // reserved
  const std::uint64_t len = h.u64();
  const std::uint64_t sum = h.u64();
  if (len != data.size() - kHeader ||
      ser::checksum64(data.data() + kHeader, static_cast<std::size_t>(len)) !=
          sum) {
    throw std::runtime_error(path + ": corrupt dwv result file");
  }
  return ser::Bytes(data.begin() + static_cast<std::ptrdiff_t>(kHeader),
                    data.end());
}

}  // namespace

void save_shard_result_file(const std::string& path, const ShardResult& v) {
  ser::Writer w;
  put(w, v);
  write_whole_file(path, framed_file_bytes(kShardMagic, w.bytes()));
}

ShardResult load_shard_result_file(const std::string& path) {
  const ser::Bytes payload = open_framed_file(path, kShardMagic);
  ser::Reader r(payload);
  ShardResult out;
  if (!get(r, out) || r.remaining() != 0) {
    throw std::runtime_error(path + ": malformed shard result payload");
  }
  return out;
}

void save_initial_set_result_file(const std::string& path,
                                  std::uint64_t fingerprint,
                                  const InitialSetResult& v) {
  ser::Writer w;
  w.u64(fingerprint);
  put(w, v);
  write_whole_file(path, framed_file_bytes(kResultMagic, w.bytes()));
}

InitialSetResult load_initial_set_result_file(const std::string& path,
                                              std::uint64_t* fingerprint) {
  const ser::Bytes payload = open_framed_file(path, kResultMagic);
  ser::Reader r(payload);
  const std::uint64_t fp = r.u64();
  InitialSetResult out;
  if (!get(r, out) || r.remaining() != 0) {
    throw std::runtime_error(path + ": malformed search result payload");
  }
  if (fingerprint != nullptr) *fingerprint = fp;
  return out;
}

}  // namespace dwv::core
