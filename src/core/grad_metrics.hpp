// Forward-mode derivatives of the verification-feedback metrics
// (core/metrics.hpp) through the dual flowpipe boxes produced by
// reach::TmGradient.
//
// Every *_grad function's VALUE equals the corresponding scalar metric on
// gfp.fp bit for bit: the value channel replays the scalar computation
// operation for operation (same intersections, same sqrt-then-square
// distances, same accumulation order), with branch decisions taken on the
// value alone. The gradient channel differentiates it, using the
// central-difference tie convention of interval/dual_interval.hpp for
// min/max/intersection selections and Danskin's envelope theorem for the
// Wasserstein distance (the optimal transport plan is held fixed; the cost
// matrix is differentiated through the grid points of the final reachable
// segment).
//
// Polygon-backed flowpipes (fp.step_polys nonempty) are not produced by
// TmVerifier/TmGradient and are not supported here.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "reach/grad_flowpipe.hpp"

namespace dwv::core {

/// A metric value plus its gradient w.r.t. the controller parameters.
struct MetricGrad {
  double value = 0.0;
  std::vector<double> grad;  ///< size = gfp.dirs

  explicit MetricGrad(std::size_t dirs = 0) : grad(dirs, 0.0) {}
};

struct GeometricMetricsGrad {
  MetricGrad d_u;
  MetricGrad d_g;
};

struct WassersteinMetricsGrad {
  MetricGrad w_goal;
  MetricGrad w_unsafe;
};

/// Dual geometric_metrics: values == geometric_metrics(gfp.fp, spec).
GeometricMetricsGrad geometric_metrics_grad(const reach::GradFlowpipe& gfp,
                                            const ode::ReachAvoidSpec& spec);

/// Dual goal_containment_margin: value == goal_containment_margin(gfp.fp,
/// spec) bit for bit; gradient differentiates the selected step's binding
/// face gaps with the central-difference tie convention. Zero gradient
/// when the selected faces are theta-independent (e.g. the initial box).
MetricGrad goal_containment_margin_grad(const reach::GradFlowpipe& gfp,
                                        const ode::ReachAvoidSpec& spec);

/// Dual wasserstein_metrics: values == wasserstein_metrics(gfp.fp, spec,
/// opt). Precondition: !opt.use_sinkhorn (the learner falls back to SPSA
/// for Sinkhorn; Danskin needs the exact plan).
WassersteinMetricsGrad wasserstein_metrics_grad(
    const reach::GradFlowpipe& gfp, const ode::ReachAvoidSpec& spec,
    const WassersteinOptions& opt = {});

/// Dual failure penalties: values == geometric_penalty / wasserstein_penalty
/// on gfp.fp. Only the last-box goal gap depends on theta; the horizon
/// grading is piecewise constant (zero derivative).
GeometricMetricsGrad geometric_penalty_grad(const ode::ReachAvoidSpec& spec,
                                            const reach::GradFlowpipe& gfp);
WassersteinMetricsGrad wasserstein_penalty_grad(
    const ode::ReachAvoidSpec& spec, const reach::GradFlowpipe& gfp);

}  // namespace dwv::core
