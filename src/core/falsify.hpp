// Falsification: search for concrete counterexample initial states by
// minimizing a trace-robustness function with restarted local search
// ((1+1)-evolution strategy over X0). The paper discusses falsification
// (VerifAI-style) as the closed-loop alternative that lacks guarantees —
// here it serves two roles:
//  * sharpening the design-then-verify baselines' verdicts (a found
//    counterexample turns Unknown into Unsafe),
//  * sanity-checking certificates (a falsifier must FAIL on a controller
//    that carries a reach-avoid certificate — tested in the suite).
#pragma once

#include <random>

#include "nn/controller.hpp"
#include "ode/spec.hpp"
#include "ode/system.hpp"
#include "sim/simulate.hpp"

namespace dwv::core {

struct FalsifyOptions {
  std::size_t restarts = 8;          ///< independent local searches
  std::size_t iters_per_restart = 60;
  /// Initial mutation radius as a fraction of X0's half-width.
  double initial_step = 0.5;
  double step_decay = 0.97;
  std::uint64_t seed = 1;
  sim::SimOptions sim;
};

struct FalsifyResult {
  bool falsified = false;   ///< a violating initial state was found
  linalg::Vec witness;      ///< the counterexample (valid when falsified)
  double robustness = 0.0;  ///< best (lowest) robustness value reached
  std::size_t evaluations = 0;
};

/// Safety robustness of one trace: the minimum over time of the distance
/// to the unsafe set (negative depth when inside). Negative => violation.
double safety_robustness(const sim::Trace& trace,
                         const ode::ReachAvoidSpec& spec);

/// Goal robustness: negative iff the trace reaches the goal (we search for
/// initial states that do NOT reach, i.e. maximize distance-to-goal), so a
/// POSITIVE value is the violation here. Concretely: min over control
/// instants of the distance to the goal box; > 0 => never reached.
double goal_robustness(const sim::Trace& trace,
                       const ode::ReachAvoidSpec& spec);

/// Searches X0 for an initial state whose trace enters Xu.
FalsifyResult falsify_safety(const ode::System& sys,
                             const nn::Controller& ctrl,
                             const ode::ReachAvoidSpec& spec,
                             const FalsifyOptions& opt = {});

/// Searches X0 for an initial state whose trace never reaches Xg.
FalsifyResult falsify_goal(const ode::System& sys,
                           const nn::Controller& ctrl,
                           const ode::ReachAvoidSpec& spec,
                           const FalsifyOptions& opt = {});

}  // namespace dwv::core
