// The paper's two verification-feedback metrics over a computed flowpipe:
//  * geometric distances d_u, d_g (Eq. 2 and 3),
//  * Wasserstein distances W(r_theta, u), W(r_theta, g) (Eq. 4), with the
//    final reachable segment viewed as a uniform distribution.
#pragma once

#include "ode/spec.hpp"
#include "reach/flowpipe.hpp"
#include "transport/emd.hpp"
#include "transport/sinkhorn.hpp"

namespace dwv::core {

/// d_u (Eq. 2): negative overlap measure when the tube intersects Xu, else
/// the squared distance from the tube to Xu. Positive iff verified safe.
/// Uses the whole-interval hulls (safety must hold in continuous time) and,
/// when the flowpipe carries exact 2-D polygons, polygon geometry.
double geometric_unsafe_distance(const reach::Flowpipe& fp,
                                 const ode::ReachAvoidSpec& spec);

/// d_g (Eq. 3): overlap measure when some step set intersects Xg, else the
/// negated squared distance from the reach set to Xg. Positive iff the
/// over-approximated reach set meets the goal at some control instant.
double geometric_goal_distance(const reach::Flowpipe& fp,
                               const ode::ReachAvoidSpec& spec);

struct GeometricMetrics {
  double d_u = 0.0;
  double d_g = 0.0;
  bool feasible() const { return d_u > 0.0 && d_g > 0.0; }
};
GeometricMetrics geometric_metrics(const reach::Flowpipe& fp,
                                   const ode::ReachAvoidSpec& spec);

/// Goal-containment margin: max over step sets of the smallest face gap to
/// the goal box (min over dims of min(goal.hi - hi, lo - goal.lo)). A
/// positive margin certifies goal containment in the sense of
/// analyze_flowpipe (some whole step set inside Xg); unlike the overlap
/// measure d_g it keeps growing as the step set contracts INTO the goal,
/// so it is the right ascent objective for require_containment runs.
/// -infinity for invalid/empty flowpipes.
double goal_containment_margin(const reach::Flowpipe& fp,
                               const ode::ReachAvoidSpec& spec);

struct WassersteinOptions {
  /// Grid resolution per dimension for the uniform discretizations.
  std::size_t grid = 5;
  /// Use the Sinkhorn approximation instead of exact EMD.
  bool use_sinkhorn = false;
  transport::SinkhornOptions sinkhorn;
};

struct WassersteinMetrics {
  double w_goal = 0.0;    ///< W1(r_theta, g)
  double w_unsafe = 0.0;  ///< W1(r_theta, u)
  /// The paper's objective: minimize w_goal - w_unsafe.
  double objective() const { return w_goal - w_unsafe; }
};

/// Computes both Wasserstein metrics from the final reachable segment
/// (projected onto the dimensions each set constrains; unbounded sets are
/// clipped to spec.state_bounds).
WassersteinMetrics wasserstein_metrics(const reach::Flowpipe& fp,
                                       const ode::ReachAvoidSpec& spec,
                                       const WassersteinOptions& opt = {});

/// Penalty metric values used when the verifier failed (diverged pipe):
/// strongly infeasible, graded by how many steps completed before the blowup
/// so the learner still has a gradient toward longer-lived pipes.
GeometricMetrics geometric_penalty(const ode::ReachAvoidSpec& spec,
                                   const reach::Flowpipe& fp);
WassersteinMetrics wasserstein_penalty(const ode::ReachAvoidSpec& spec,
                                       const reach::Flowpipe& fp);

}  // namespace dwv::core
