// Algorithm 1: verification-in-the-loop control learning.
//
// Each iteration queries the verifier for the reachable set under SPSA
// perturbations of the controller parameters, approximates the metric
// gradients with the paper's difference method (Eq. 5, Fig. 2), and ascends
// until the reach-avoid feedback metrics certify feasibility or the
// iteration budget is exhausted.
#pragma once

#include <functional>
#include <random>

#include "core/metrics.hpp"
#include "core/verdict.hpp"
#include "nn/controller.hpp"
#include "reach/cache.hpp"
#include "reach/verifier.hpp"

namespace dwv::reach {
class TmVerifier;
}

namespace dwv::core {

enum class MetricKind { kGeometric, kWasserstein };
std::string to_string(MetricKind m);

enum class GradientMode {
  kSpsa,           ///< one Bernoulli +-1 simultaneous perturbation (Fig. 2)
  kSpsaAveraged,   ///< average of several SPSA estimates
  kCoordinate,     ///< full central differences, one coordinate at a time
};

struct LearnerOptions {
  MetricKind metric = MetricKind::kGeometric;
  GradientMode gradient = GradientMode::kSpsa;
  std::size_t spsa_samples = 2;    ///< for kSpsaAveraged; clamped to >= 1
  std::size_t max_iters = 100;     ///< N in Algorithm 1
  /// Weights of the combined ascent objective J = alpha d_u + beta d_g
  /// (Algorithm 1 line 6; with a shared perturbation the two-gradient
  /// update is exactly SPSA on this weighted sum).
  double alpha = 1.0;
  double beta = 1.0;
  double perturbation = 0.02;      ///< SPSA perturbation magnitude p
  /// Step: theta += step_size * g / |g|_inf, decayed by 1/(1 + decay * t).
  double step_size = 0.1;
  double step_decay = 0.0;
  /// Use Adam on the (raw) SPSA gradient instead of the normalized step.
  bool use_adam = false;
  double adam_lr = 0.05;
  /// Stop only when, additionally, some step set is fully inside the goal
  /// (full-X0 certification instead of metric positivity).
  bool require_containment = false;
  /// Random re-initializations when a run stalls (Algorithm 1's "randomly
  /// initialize theta"); iterations keep accumulating across restarts.
  /// Each attempt gets a budget of max(1, max_iters / restarts) iterations,
  /// so the global iteration counter reaches `max_iters` (and the run
  /// returns) after at most `max_iters` restarts — setting
  /// `restarts > max_iters` never actually performs the extra restarts.
  std::size_t restarts = 3;
  double restart_scale = 1.0;  ///< stddev of the random re-initialization
  std::uint64_t seed = 42;
  /// Concurrent verifier calls for the independent probe evaluations (the
  /// SPSA tp/tm pair, all averaged samples, the 2d coordinate probes).
  /// 0 = auto (DWV_THREADS env var, else hardware concurrency); 1 = the
  /// exact serial path. All perturbations are drawn up front on the main
  /// thread and reductions run in index order, so results are bit-identical
  /// across thread counts.
  std::size_t threads = 0;
  /// Lane-batch width for grouped probe evaluations: each SPSA iteration
  /// submits its +-probe pair (and all averaged samples / coordinate
  /// probes) to a reach::BatchVerifier, which steps compatible verifiers
  /// through the SoA lane kernels in lockstep (DESIGN.md section 11).
  /// 0 = auto (the SIMD lane width), 1 = evaluate probes one at a time
  /// (the seed path). Results are bit-identical at any setting.
  std::size_t batch = 0;
  /// Memoize verifier calls across iterations (reach/cache.hpp): averaged
  /// SPSA re-draws probe pairs from a set of only 2^(d-1) distinct
  /// unordered pairs, and restarts re-evaluate recurring iterates. Hits
  /// return exactly what recomputation would (exact-material keys over a
  /// deterministic verifier), so enabling the cache changes no result bit
  /// at any thread count — only the wall clock. Verifier configuration —
  /// including a TmVerifier's symbolic-remainder-queue mode, whose results
  /// are only containment-comparable with queue-off runs (DESIGN.md §12) —
  /// is folded into the keys via Verifier::cache_salt, so probes cached
  /// under one mode can never answer the other.
  bool cache = false;
  std::size_t cache_capacity = 4096;  ///< resident flowpipes when caching
  std::size_t cache_shards = 16;      ///< lock stripes (contention knob)
  /// Persistent cache directory (DESIGN.md §15): non-empty adds the
  /// on-disk tier behind the memory tier, so a second learn of the same
  /// configuration warm-starts from the previous run's flowpipes (same
  /// bit-identity contract as the memory tier). Implies `cache`.
  std::string cache_dir;
  /// Analytic forward-mode gradients (reach::TmGradient): one dual verifier
  /// pass per iteration yields the flowpipe AND the exact metric gradient
  /// w.r.t. the controller parameters, replacing the 2 * spsa_samples probe
  /// calls of the difference method. The non-Adam ascent exploits the two
  /// separate metric gradients: it climbs d_u until the pipe is safe, then
  /// climbs d_g with the safety-eroding gradient component projected out,
  /// line-searching and then marching along each direction with cheap
  /// scalar probe evaluations (counted as verifier calls) so one dual pass
  /// serves several parameter updates. Requires a TmVerifier in its default
  /// range mode with polynomial dynamics and a linear or polynomial
  /// controller (and exact EMD for the Wasserstein metric); unsupported
  /// combinations print a warning to stderr and fall back to the configured
  /// SPSA mode. When false, the SPSA path runs exactly as before.
  bool grad = false;
  WassersteinOptions wopt;

  /// Returns a copy with out-of-range fields clamped into their documented
  /// domains (spsa_samples >= 1 — 0 would divide the averaged gradient by
  /// zero and poison theta with NaNs) and asserts on nonsensical settings
  /// (non-positive perturbation or step size). The Learner constructor
  /// applies this automatically.
  LearnerOptions validated() const;
};

/// One entry of the learning curve (Figs. 4 and 5).
struct IterationRecord {
  std::size_t iter = 0;
  GeometricMetrics geo;
  WassersteinMetrics wass;
  bool feasible = false;
};

struct LearnResult {
  bool success = false;            ///< feasibility reached within budget
  std::size_t iterations = 0;      ///< convergence iterations (CI)
  std::vector<IterationRecord> history;
  std::size_t verifier_calls = 0;
  /// Summed wall time of every verifier call (with threads > 1 concurrent
  /// calls overlap, so this exceeds elapsed wall-clock time).
  double verifier_seconds = 0.0;
  /// Flowpipe of the last evaluated iterate — the certified pipe on
  /// success, otherwise the final reachable-set estimate (also when every
  /// restart is exhausted), so exports and plots always see a real pipe.
  reach::Flowpipe final_flowpipe;
  /// Snapshot of the flowpipe-cache counters at the end of the run (all
  /// zero when `LearnerOptions::cache` is off and no caching verifier was
  /// supplied). `verifier_seconds` already reflects the savings; this
  /// explains them (hits, misses, per-phase overhead/compute split).
  reach::CacheStats cache_stats;
};

class Learner {
 public:
  Learner(reach::VerifierPtr verifier, ode::ReachAvoidSpec spec,
          LearnerOptions opt = {});

  /// Runs Algorithm 1 starting from (and mutating) `ctrl`'s parameters.
  LearnResult learn(nn::Controller& ctrl) const;

  /// Evaluates the current controller once (no update); used by benches.
  IterationRecord evaluate(const nn::Controller& ctrl) const;

 private:
  struct MetricPair {
    double d_u = 0.0;  ///< "stay away from unsafe" score (larger better)
    double d_g = 0.0;  ///< "approach goal" score (larger better)
    bool feasible = false;
  };
  MetricPair measure(const reach::Flowpipe& fp) const;

  /// The TmVerifier the gradient engine would differentiate through (the
  /// inner verifier when wrapped in a CachingVerifier); null when the
  /// verifier is not a TmVerifier.
  const reach::TmVerifier* grad_target() const;

  /// Analytic-gradient variant of learn() (opt_.grad with a supported
  /// configuration): same restart/ascent/bookkeeping structure, but each
  /// iteration's gradient comes from one dual flowpipe pass instead of
  /// SPSA probe pairs.
  LearnResult learn_grad(nn::Controller& ctrl,
                         const reach::TmVerifier& tv) const;

  reach::VerifierPtr verifier_;
  ode::ReachAvoidSpec spec_;
  LearnerOptions opt_;
  /// Non-null when this learner memoizes verifier calls — either because
  /// `opt_.cache` wrapped the verifier here, or because the caller already
  /// passed a CachingVerifier (reused as-is, never double-wrapped).
  std::shared_ptr<reach::FlowpipeCache> cache_;
};

}  // namespace dwv::core
