// Algorithm 1: verification-in-the-loop control learning.
//
// Each iteration queries the verifier for the reachable set under SPSA
// perturbations of the controller parameters, approximates the metric
// gradients with the paper's difference method (Eq. 5, Fig. 2), and ascends
// until the reach-avoid feedback metrics certify feasibility or the
// iteration budget is exhausted.
#pragma once

#include <functional>
#include <random>

#include "core/metrics.hpp"
#include "core/verdict.hpp"
#include "nn/controller.hpp"
#include "reach/verifier.hpp"

namespace dwv::core {

enum class MetricKind { kGeometric, kWasserstein };
std::string to_string(MetricKind m);

enum class GradientMode {
  kSpsa,           ///< one Bernoulli +-1 simultaneous perturbation (Fig. 2)
  kSpsaAveraged,   ///< average of several SPSA estimates
  kCoordinate,     ///< full central differences, one coordinate at a time
};

struct LearnerOptions {
  MetricKind metric = MetricKind::kGeometric;
  GradientMode gradient = GradientMode::kSpsa;
  std::size_t spsa_samples = 2;    ///< for kSpsaAveraged
  std::size_t max_iters = 100;     ///< N in Algorithm 1
  /// Weights of the combined ascent objective J = alpha d_u + beta d_g
  /// (Algorithm 1 line 6; with a shared perturbation the two-gradient
  /// update is exactly SPSA on this weighted sum).
  double alpha = 1.0;
  double beta = 1.0;
  double perturbation = 0.02;      ///< SPSA perturbation magnitude p
  /// Step: theta += step_size * g / |g|_inf, decayed by 1/(1 + decay * t).
  double step_size = 0.1;
  double step_decay = 0.0;
  /// Use Adam on the (raw) SPSA gradient instead of the normalized step.
  bool use_adam = false;
  double adam_lr = 0.05;
  /// Stop only when, additionally, some step set is fully inside the goal
  /// (full-X0 certification instead of metric positivity).
  bool require_containment = false;
  /// Random re-initializations when a run stalls (Algorithm 1's "randomly
  /// initialize theta"); iterations keep accumulating across restarts.
  std::size_t restarts = 3;
  double restart_scale = 1.0;  ///< stddev of the random re-initialization
  std::uint64_t seed = 42;
  WassersteinOptions wopt;
};

/// One entry of the learning curve (Figs. 4 and 5).
struct IterationRecord {
  std::size_t iter = 0;
  GeometricMetrics geo;
  WassersteinMetrics wass;
  bool feasible = false;
};

struct LearnResult {
  bool success = false;            ///< feasibility reached within budget
  std::size_t iterations = 0;      ///< convergence iterations (CI)
  std::vector<IterationRecord> history;
  std::size_t verifier_calls = 0;
  double verifier_seconds = 0.0;   ///< wall time inside the verifier
  reach::Flowpipe final_flowpipe;
};

class Learner {
 public:
  Learner(reach::VerifierPtr verifier, ode::ReachAvoidSpec spec,
          LearnerOptions opt = {});

  /// Runs Algorithm 1 starting from (and mutating) `ctrl`'s parameters.
  LearnResult learn(nn::Controller& ctrl) const;

  /// Evaluates the current controller once (no update); used by benches.
  IterationRecord evaluate(const nn::Controller& ctrl) const;

 private:
  struct MetricPair {
    double d_u = 0.0;  ///< "stay away from unsafe" score (larger better)
    double d_g = 0.0;  ///< "approach goal" score (larger better)
    bool feasible = false;
  };
  MetricPair measure(const reach::Flowpipe& fp) const;

  reach::VerifierPtr verifier_;
  ode::ReachAvoidSpec spec_;
  LearnerOptions opt_;
};

}  // namespace dwv::core
