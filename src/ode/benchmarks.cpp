#include "ode/benchmarks.hpp"

#include <limits>

#include "ode/systems.hpp"

namespace dwv::ode {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
using interval::Interval;
}  // namespace

Benchmark make_acc_benchmark() {
  Benchmark b;
  b.name = "acc";
  b.system = std::make_shared<AccSystem>();

  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(122.0, 124.0), Interval(48.0, 52.0)};
  s.goal = geom::Box{Interval(145.0, 155.0), Interval(39.5, 40.5)};
  s.goal_dims = {0, 1};
  // Xu = { (s, v) : s <= 120 }: a half-space in the distance coordinate.
  s.unsafe = geom::Box{Interval(-kInf, 120.0), Interval(-kInf, kInf)};
  s.unsafe_dims = {0};
  s.delta = 0.1;
  s.steps = 100;  // T = 10 s.
  // Generous: any trajectory within the horizon stays inside (|s'| <= 40
  // from X0 over 10 s), so the Wasserstein metric keeps its gradient even
  // for poor intermediate controllers.
  s.state_bounds = geom::Box{Interval(40.0, 600.0), Interval(-20.0, 100.0)};
  b.spec = std::move(s);
  return b;
}

Benchmark make_oscillator_benchmark() {
  Benchmark b;
  b.name = "oscillator";
  b.system = std::make_shared<VanDerPolSystem>();

  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(-0.51, -0.49), Interval(0.49, 0.51)};
  s.goal = geom::Box{Interval(-0.05, 0.05), Interval(-0.05, 0.05)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(-0.3, -0.25), Interval(0.2, 0.35)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.1;
  s.steps = 35;  // T = 3.5 s.
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

Benchmark make_3d_benchmark() {
  Benchmark b;
  b.name = "sys3d";
  b.system = std::make_shared<Sys3d>();

  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.38, 0.40), Interval(0.45, 0.47),
                   Interval(0.25, 0.27)};
  s.goal = geom::Box{Interval(-0.5, -0.28), Interval(0.0, 0.28),
                     Interval(-kInf, kInf)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(-0.1, 0.2), Interval(0.55, 0.6),
                       Interval(-kInf, kInf)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.2;
  s.steps = 30;  // T = 6 s.
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0),
                             Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

}  // namespace dwv::ode
