// The paper's three benchmark instances (Section 4): system dynamics plus
// the reach-avoid sets, sampling periods, and horizons.
#pragma once

#include "ode/spec.hpp"
#include "ode/system.hpp"

namespace dwv::ode {

/// A fully-specified benchmark: dynamics plus reach-avoid problem.
struct Benchmark {
  SystemPtr system;
  ReachAvoidSpec spec;
  std::string name;
};

/// ACC: X0 = [122,124]x[48,52], Xu = {s <= 120}, Xg = [145,155]x[39.5,40.5],
/// delta = 0.1. (Linear system, linear controller in the paper.)
Benchmark make_acc_benchmark();

/// Van der Pol oscillator: X0 = [-0.51,-0.49]x[0.49,0.51],
/// Xg = [-0.05,0.05]^2, Xu = [-0.3,-0.25]x[0.2,0.35], delta = 0.1.
Benchmark make_oscillator_benchmark();

/// 3-D system: X0 = [0.38,0.4]x[0.45,0.47]x[0.25,0.27],
/// Xg = {x1 in [-0.5,-0.28], x2 in [0,0.28]},
/// Xu = {x1 in [-0.1,0.2], x2 in [0.55,0.6]}, delta = 0.2.
Benchmark make_3d_benchmark();

}  // namespace dwv::ode
