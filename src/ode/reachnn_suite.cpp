#include "ode/reachnn_suite.hpp"

#include <limits>

namespace dwv::ode {

using interval::Interval;
using linalg::Mat;
using linalg::Vec;
using poly::Exponents;
using poly::Poly;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Poly mono(std::size_t nvars, std::initializer_list<std::uint32_t> exps,
          double c) {
  Poly p(nvars);
  Exponents e(exps);
  e.resize(nvars, 0);
  p.add_term(e, c);
  return p;
}
}  // namespace

// ------------------------------------------------------------------ B1 ----

Vec B1System::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 2 && u.size() == 1);
  return Vec{x[1], u[0] * x[1] * x[1] - x[0]};
}

Mat B1System::dfdx(const Vec& x, const Vec& u) const {
  return Mat{{0.0, 1.0}, {-1.0, 2.0 * u[0] * x[1]}};
}

Mat B1System::dfdu(const Vec& x, const Vec&) const {
  return Mat{{0.0}, {x[1] * x[1]}};
}

std::vector<Poly> B1System::poly_dynamics() const {
  const std::size_t nv = 3;  // (x1, x2, u)
  std::vector<Poly> f(2, Poly(nv));
  f[0] = mono(nv, {0, 1, 0}, 1.0);
  f[1] = mono(nv, {0, 2, 1}, 1.0) + mono(nv, {1, 0, 0}, -1.0);
  return f;
}

// ------------------------------------------------------------------ B2 ----

Vec B2System::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 2 && u.size() == 1);
  return Vec{x[1] - x[0] * x[0] * x[0], u[0]};
}

Mat B2System::dfdx(const Vec& x, const Vec&) const {
  return Mat{{-3.0 * x[0] * x[0], 1.0}, {0.0, 0.0}};
}

Mat B2System::dfdu(const Vec&, const Vec&) const {
  return Mat{{0.0}, {1.0}};
}

std::vector<Poly> B2System::poly_dynamics() const {
  const std::size_t nv = 3;
  std::vector<Poly> f(2, Poly(nv));
  f[0] = mono(nv, {0, 1, 0}, 1.0) + mono(nv, {3, 0, 0}, -1.0);
  f[1] = mono(nv, {0, 0, 1}, 1.0);
  return f;
}

// ------------------------------------------------------------------ B3 ----

Vec B3System::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 2 && u.size() == 1);
  const double q = 0.1 + (x[0] + x[1]) * (x[0] + x[1]);
  return Vec{-x[0] * q, (u[0] + x[0]) * q};
}

Mat B3System::dfdx(const Vec& x, const Vec& u) const {
  const double s = x[0] + x[1];
  const double q = 0.1 + s * s;
  return Mat{{-q - 2.0 * x[0] * s, -2.0 * x[0] * s},
             {q + 2.0 * (u[0] + x[0]) * s, 2.0 * (u[0] + x[0]) * s}};
}

Mat B3System::dfdu(const Vec& x, const Vec&) const {
  const double s = x[0] + x[1];
  return Mat{{0.0}, {0.1 + s * s}};
}

std::vector<Poly> B3System::poly_dynamics() const {
  const std::size_t nv = 3;
  // q = 0.1 + (x1 + x2)^2 as a polynomial.
  Poly s = mono(nv, {1, 0, 0}, 1.0) + mono(nv, {0, 1, 0}, 1.0);
  Poly q = s * s + Poly::constant(nv, 0.1);
  std::vector<Poly> f(2, Poly(nv));
  f[0] = mono(nv, {1, 0, 0}, -1.0) * q;
  f[1] = (mono(nv, {0, 0, 1}, 1.0) + mono(nv, {1, 0, 0}, 1.0)) * q;
  return f;
}

// ------------------------------------------------------------------ B4 ----

Vec B4System::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 3 && u.size() == 1);
  return Vec{-x[0] + x[1] - x[2], -x[0] * (x[2] + 1.0) - x[1],
             -x[0] + u[0]};
}

Mat B4System::dfdx(const Vec& x, const Vec&) const {
  return Mat{{-1.0, 1.0, -1.0},
             {-(x[2] + 1.0), -1.0, -x[0]},
             {-1.0, 0.0, 0.0}};
}

Mat B4System::dfdu(const Vec&, const Vec&) const {
  return Mat{{0.0}, {0.0}, {1.0}};
}

std::vector<Poly> B4System::poly_dynamics() const {
  const std::size_t nv = 4;  // (x1, x2, x3, u)
  std::vector<Poly> f(3, Poly(nv));
  f[0] = mono(nv, {1, 0, 0, 0}, -1.0) + mono(nv, {0, 1, 0, 0}, 1.0) +
         mono(nv, {0, 0, 1, 0}, -1.0);
  f[1] = mono(nv, {1, 0, 1, 0}, -1.0) + mono(nv, {1, 0, 0, 0}, -1.0) +
         mono(nv, {0, 1, 0, 0}, -1.0);
  f[2] = mono(nv, {1, 0, 0, 0}, -1.0) + mono(nv, {0, 0, 0, 1}, 1.0);
  return f;
}

// ----------------------------------------------------------- factories ----

Benchmark make_b1_benchmark() {
  Benchmark b;
  b.name = "b1";
  b.system = std::make_shared<B1System>();
  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.8, 0.9), Interval(0.5, 0.6)};
  s.goal = geom::Box{Interval(0.0, 0.2), Interval(0.05, 0.3)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(0.55, 0.75), Interval(-1.3, -0.95)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.2;
  s.steps = 35;
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

Benchmark make_b2_benchmark() {
  Benchmark b;
  b.name = "b2";
  b.system = std::make_shared<B2System>();
  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.7, 0.9), Interval(0.7, 0.9)};
  s.goal = geom::Box{Interval(-0.3, 0.1), Interval(-0.35, 0.5)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(0.25, 0.45), Interval(-0.8, -0.55)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.2;
  s.steps = 25;
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

Benchmark make_b3_benchmark() {
  Benchmark b;
  b.name = "b3";
  b.system = std::make_shared<B3System>();
  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.8, 0.9), Interval(0.4, 0.5)};
  s.goal = geom::Box{Interval(0.2, 0.3), Interval(-0.3, -0.05)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(0.45, 0.6), Interval(0.2, 0.35)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.1;
  s.steps = 40;  // T = 4 s
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

Benchmark make_b4_benchmark() {
  Benchmark b;
  b.name = "b4";
  b.system = std::make_shared<B4System>();
  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.25, 0.27), Interval(0.08, 0.10),
                   Interval(0.25, 0.27)};
  s.goal = geom::Box{Interval(-0.05, 0.05), Interval(-0.05, 0.05),
                     Interval(-kInf, kInf)};
  s.goal_dims = {0, 1};
  s.unsafe = geom::Box{Interval(0.12, 0.17), Interval(-0.2, -0.12),
                       Interval(-kInf, kInf)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.1;
  s.steps = 30;
  s.state_bounds = geom::Box{Interval(-3.0, 3.0), Interval(-3.0, 3.0),
                             Interval(-3.0, 3.0)};
  b.spec = std::move(s);
  return b;
}

std::vector<Benchmark> make_reachnn_suite() {
  std::vector<Benchmark> suite;
  suite.push_back(make_b1_benchmark());
  suite.push_back(make_b2_benchmark());
  suite.push_back(make_b3_benchmark());
  suite.push_back(make_b4_benchmark());
  suite.push_back(make_3d_benchmark());  // B5
  return suite;
}

}  // namespace dwv::ode
