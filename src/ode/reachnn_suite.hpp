// The ReachNN benchmark suite (Huang et al., TECS'19), benchmarks B1-B5:
// the standard nonlinear systems used across the NN-controller
// verification literature (ReachNN, ReachNN*, POLAR, Verisig). The paper's
// 3-D example is B5; the rest are provided here so the framework can be
// exercised on the full suite.
//
// ReachNN specifies initial and goal sets; it has no unsafe sets (pure
// reach). The unsafe boxes below are our additions (placed on the nominal
// path's flank) so every instance is a full reach-avoid problem; they are
// marked in each factory's comment.
#pragma once

#include "ode/benchmarks.hpp"

namespace dwv::ode {

/// B1: x1' = x2, x2' = u x2^2 - x1.
class B1System final : public System {
 public:
  std::string name() const override { return "b1"; }
  std::size_t state_dim() const override { return 2; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
};

/// B2: x1' = x2 - x1^3, x2' = u.
class B2System final : public System {
 public:
  std::string name() const override { return "b2"; }
  std::size_t state_dim() const override { return 2; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
};

/// B3: x1' = -x1 (0.1 + (x1 + x2)^2), x2' = (u + x1)(0.1 + (x1 + x2)^2).
class B3System final : public System {
 public:
  std::string name() const override { return "b3"; }
  std::size_t state_dim() const override { return 2; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
};

/// B4: x1' = -x1 + x2 - x3, x2' = -x1 (x3 + 1) - x2, x3' = -x1 + u.
class B4System final : public System {
 public:
  std::string name() const override { return "b4"; }
  std::size_t state_dim() const override { return 3; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
};

// B5 is the paper's 3-D example; see ode::Sys3d / make_3d_benchmark().

/// B1: X0 = [0.8,0.9]x[0.5,0.6], Xg = [0,0.2]x[0.05,0.3] (ReachNN);
/// Xu = [0.55,0.75]x[-1.3,-0.95] (ours: penalizes over-aggressive
/// dives), delta = 0.2.
Benchmark make_b1_benchmark();

/// B2: X0 = [0.7,0.9]x[0.7,0.9], Xg = [-0.3,0.1]x[-0.35,0.5] (ReachNN);
/// Xu = [0.25,0.45]x[-0.8,-0.55] (ours), delta = 0.2.
Benchmark make_b2_benchmark();

/// B3: X0 = [0.8,0.9]x[0.4,0.5], Xg = [0.2,0.3]x[-0.3,-0.05] (ReachNN);
/// Xu = [0.45,0.6]x[0.2,0.35] (ours), delta = 0.1.
Benchmark make_b3_benchmark();

/// B4: X0 = [0.25,0.27]x[0.08,0.1]x[0.25,0.27],
/// Xg = {x1 in [-0.05,0.05], x2 in [-0.05,0.05]} (ReachNN);
/// Xu = {x1 in [0.12,0.17], x2 in [-0.2,-0.12]} (ours), delta = 0.1.
Benchmark make_b4_benchmark();

/// All five instances (B5 = the paper's 3-D benchmark).
std::vector<Benchmark> make_reachnn_suite();

}  // namespace dwv::ode
