// The paper's three evaluation systems (Section 4).
#pragma once

#include "ode/system.hpp"

namespace dwv::ode {

/// Linear adaptive cruise control [Wang et al., ICCAD'20]:
///   s' = v_f - v,   v' = k v + u,
/// state (s, v) = (relative distance, ego velocity).
class AccSystem final : public System {
 public:
  AccSystem(double v_front = 40.0, double k = -0.2)
      : v_front_(v_front), k_(k) {}

  std::string name() const override { return "acc"; }
  std::size_t state_dim() const override { return 2; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
  std::optional<LtiForm> lti() const override;

  double v_front() const { return v_front_; }
  double k() const { return k_; }

 private:
  double v_front_;
  double k_;
};

/// Van der Pol oscillator with control [Wang et al., ICCAD'20]:
///   x1' = x2,   x2' = gamma (1 - x1^2) x2 - x1 + u.
class VanDerPolSystem final : public System {
 public:
  explicit VanDerPolSystem(double gamma = 1.0) : gamma_(gamma) {}

  std::string name() const override { return "oscillator"; }
  std::size_t state_dim() const override { return 2; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// 3-D numerical benchmark [Huang et al., ReachNN; Ivanov et al., Verisig]:
///   x1' = x3^3 - x2,   x2' = x3,   x3' = u.
class Sys3d final : public System {
 public:
  std::string name() const override { return "sys3d"; }
  std::size_t state_dim() const override { return 3; }
  std::size_t input_dim() const override { return 1; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  std::vector<poly::Poly> poly_dynamics() const override;
};

}  // namespace dwv::ode
