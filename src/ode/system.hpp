// Continuous-time control system interface: x' = f(x, u).
//
// Every system exposes three faces of the same dynamics:
//  * numeric f (simulation),
//  * analytic Jacobians df/dx, df/du (model-based baselines, SVG),
//  * polynomial form (symbolic reachability with Taylor models).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vec.hpp"
#include "poly/poly.hpp"

namespace dwv::ode {

/// Affine-time-invariant face of a system, when it has one:
/// x' = A x + B u + c (c covers constant drift such as the ACC's v_f).
struct LtiForm {
  linalg::Mat a;
  linalg::Mat b;
  linalg::Vec c;
};

class System {
 public:
  virtual ~System() = default;

  virtual std::string name() const = 0;
  virtual std::size_t state_dim() const = 0;
  virtual std::size_t input_dim() const = 0;

  /// Vector field f(x, u).
  virtual linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const = 0;

  /// Jacobian of f with respect to the state (n x n).
  virtual linalg::Mat dfdx(const linalg::Vec& x,
                           const linalg::Vec& u) const = 0;
  /// Jacobian of f with respect to the input (n x m).
  virtual linalg::Mat dfdu(const linalg::Vec& x,
                           const linalg::Vec& u) const = 0;

  /// Dynamics as polynomials over (x_0..x_{n-1}, u_0..u_{m-1}); all paper
  /// systems are polynomial, which the TM flowpipe exploits directly.
  virtual std::vector<poly::Poly> poly_dynamics() const = 0;

  /// The (A, B) pair when the system is exactly linear.
  virtual std::optional<LtiForm> lti() const { return std::nullopt; }
};

using SystemPtr = std::shared_ptr<const System>;

}  // namespace dwv::ode
