// System built from expression-tree dynamics, plus the pendulum benchmark
// (the classic non-polynomial instance of the NN-verification literature).
#pragma once

#include "ode/benchmarks.hpp"
#include "ode/expr.hpp"
#include "ode/system.hpp"

namespace dwv::ode {

/// Dynamics given as one expression per state derivative, over the
/// combined variable vector (x_0..x_{n-1}, u_0..u_{m-1}). Jacobians come
/// from symbolic differentiation; poly_dynamics() is unavailable (use
/// reach::ExprTmDynamics with the TM verifier instead).
class ExprSystem final : public System {
 public:
  ExprSystem(std::string name, std::size_t state_dim, std::size_t input_dim,
             std::vector<ExprPtr> f);

  std::string name() const override { return name_; }
  std::size_t state_dim() const override { return n_; }
  std::size_t input_dim() const override { return m_; }
  linalg::Vec f(const linalg::Vec& x, const linalg::Vec& u) const override;
  linalg::Mat dfdx(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  linalg::Mat dfdu(const linalg::Vec& x,
                   const linalg::Vec& u) const override;
  /// Not polynomial: returns an empty vector; the TM verifier must be
  /// driven through reach::ExprTmDynamics.
  std::vector<poly::Poly> poly_dynamics() const override { return {}; }

  const std::vector<ExprPtr>& exprs() const { return f_; }

 private:
  std::string name_;
  std::size_t n_;
  std::size_t m_;
  std::vector<ExprPtr> f_;
  std::vector<std::vector<ExprPtr>> dfdx_;  // [i][j] = d f_i / d x_j
  std::vector<std::vector<ExprPtr>> dfdu_;  // [i][j] = d f_i / d u_j
};

/// Damped pendulum swing-down: th' = w, w' = -(g/l) sin(th) - c w + u,
/// g/l = 9.81, c = 0.2. Start hanging off-center, reach the small
/// neighborhood of the stable equilibrium while avoiding an overswing box.
/// delta = 0.05, T = 2 s.
Benchmark make_pendulum_benchmark();

}  // namespace dwv::ode
