#include "ode/expr_system.hpp"

#include <cassert>
#include <limits>

namespace dwv::ode {

using interval::Interval;
using linalg::Mat;
using linalg::Vec;

ExprSystem::ExprSystem(std::string name, std::size_t state_dim,
                       std::size_t input_dim, std::vector<ExprPtr> f)
    : name_(std::move(name)), n_(state_dim), m_(input_dim), f_(std::move(f)) {
  assert(f_.size() == n_);
  dfdx_.resize(n_);
  dfdu_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    dfdx_[i].reserve(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      dfdx_[i].push_back(f_[i]->derivative(j));
    }
    dfdu_[i].reserve(m_);
    for (std::size_t j = 0; j < m_; ++j) {
      dfdu_[i].push_back(f_[i]->derivative(n_ + j));
    }
  }
}

Vec ExprSystem::f(const Vec& x, const Vec& u) const {
  const Vec xu = linalg::concat(x, u);
  Vec out(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = f_[i]->eval(xu);
  return out;
}

Mat ExprSystem::dfdx(const Vec& x, const Vec& u) const {
  const Vec xu = linalg::concat(x, u);
  Mat j(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < n_; ++k) j(i, k) = dfdx_[i][k]->eval(xu);
  return j;
}

Mat ExprSystem::dfdu(const Vec& x, const Vec& u) const {
  const Vec xu = linalg::concat(x, u);
  Mat j(n_, m_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < m_; ++k) j(i, k) = dfdu_[i][k]->eval(xu);
  return j;
}

Benchmark make_pendulum_benchmark() {
  // Variables: v0 = theta, v1 = omega, v2 = u.
  const ExprPtr th = var(0);
  const ExprPtr w = var(1);
  const ExprPtr u = var(2);
  std::vector<ExprPtr> f(2);
  f[0] = w;
  f[1] = constant(-9.81) * sin(th) + constant(-0.2) * w + u;

  Benchmark b;
  b.name = "pendulum";
  b.system = std::make_shared<ExprSystem>("pendulum", 2, 1, std::move(f));

  ReachAvoidSpec s;
  s.x0 = geom::Box{Interval(0.55, 0.65), Interval(-0.05, 0.05)};
  s.goal = geom::Box{Interval(-0.08, 0.08), Interval(-0.25, 0.25)};
  s.goal_dims = {0, 1};
  // Forbid a hard overswing through the other side.
  s.unsafe = geom::Box{Interval(-0.6, -0.4), Interval(-3.0, 0.0)};
  s.unsafe_dims = {0, 1};
  s.delta = 0.05;
  s.steps = 40;  // T = 2 s
  s.state_bounds = geom::Box{Interval(-3.2, 3.2), Interval(-8.0, 8.0)};
  b.spec = std::move(s);
  return b;
}

}  // namespace dwv::ode
