// Reach-avoid problem specification (Definition 1 of the paper): initial
// set X0, goal set Xg, unsafe set Xu, sampling period and horizon.
#pragma once

#include <vector>

#include "geom/box.hpp"

namespace dwv::ode {

/// A reach-avoid control problem over a sampled-data system.
struct ReachAvoidSpec {
  /// Initial state set X0 (bounded box).
  geom::Box x0;
  /// Goal set Xg. May constrain only a subset of dimensions; the
  /// unconstrained ones carry infinite bounds.
  geom::Box goal;
  /// Unsafe set Xu (same convention; e.g. the ACC half-space s <= 120).
  geom::Box unsafe;
  /// Dimensions the goal/unsafe sets meaningfully constrain. Geometric
  /// measures and distances (Eq. 2/3) are evaluated in these subspaces.
  std::vector<std::size_t> goal_dims;
  std::vector<std::size_t> unsafe_dims;
  /// Controller sampling period delta.
  double delta = 0.1;
  /// Number of control periods in the horizon (T = steps * delta).
  std::size_t steps = 50;
  /// A bounded region the analysis may assume the state stays within; used
  /// to clip unbounded sets for Wasserstein sampling and to flag divergence.
  geom::Box state_bounds;
  /// Reach-avoid semantics: once the goal is (provably) reached the run is
  /// over — verifiers stop the flowpipe at goal containment and simulation
  /// checks safety only up to the reach time.
  bool stop_at_goal = true;

  double horizon() const { return delta * static_cast<double>(steps); }

  /// Unsafe set clipped to state_bounds (bounded proxy for sampling).
  geom::Box bounded_unsafe() const {
    auto r = unsafe.intersection(state_bounds);
    return r ? *r : unsafe;
  }
  geom::Box bounded_goal() const {
    auto r = goal.intersection(state_bounds);
    return r ? *r : goal;
  }
};

}  // namespace dwv::ode
