#include "ode/expr.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

namespace dwv::ode {

namespace {

ExprPtr node(ExprOp op, ExprPtr a = nullptr, ExprPtr b = nullptr) {
  auto e = std::make_shared<Expr>();
  e->op = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

bool is_const(const ExprPtr& e, double v) {
  return e->op == ExprOp::kConst && e->value == v;
}

}  // namespace

ExprPtr constant(double v) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kConst;
  e->value = v;
  return e;
}

ExprPtr var(std::size_t index) {
  auto e = std::make_shared<Expr>();
  e->op = ExprOp::kVar;
  e->var = index;
  return e;
}

ExprPtr operator+(ExprPtr a, ExprPtr b) {
  if (is_const(a, 0.0)) return b;
  if (is_const(b, 0.0)) return a;
  if (a->op == ExprOp::kConst && b->op == ExprOp::kConst)
    return constant(a->value + b->value);
  return node(ExprOp::kAdd, std::move(a), std::move(b));
}

ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return std::move(a) + (-std::move(b));
}

ExprPtr operator*(ExprPtr a, ExprPtr b) {
  if (is_const(a, 0.0) || is_const(b, 0.0)) return constant(0.0);
  if (is_const(a, 1.0)) return b;
  if (is_const(b, 1.0)) return a;
  if (a->op == ExprOp::kConst && b->op == ExprOp::kConst)
    return constant(a->value * b->value);
  return node(ExprOp::kMul, std::move(a), std::move(b));
}

ExprPtr operator-(ExprPtr a) {
  if (a->op == ExprOp::kConst) return constant(-a->value);
  return node(ExprOp::kNeg, std::move(a));
}

ExprPtr pow(ExprPtr a, unsigned n) {
  assert(n >= 2);
  auto e = node(ExprOp::kPow, std::move(a));
  const_cast<Expr*>(e.get())->power = n;
  return e;
}

ExprPtr sin(ExprPtr a) { return node(ExprOp::kSin, std::move(a)); }
ExprPtr cos(ExprPtr a) { return node(ExprOp::kCos, std::move(a)); }
ExprPtr tanh(ExprPtr a) { return node(ExprOp::kTanh, std::move(a)); }
ExprPtr exp(ExprPtr a) { return node(ExprOp::kExp, std::move(a)); }

double Expr::eval(const linalg::Vec& xu) const {
  switch (op) {
    case ExprOp::kConst:
      return value;
    case ExprOp::kVar:
      return xu[var];
    case ExprOp::kAdd:
      return a->eval(xu) + b->eval(xu);
    case ExprOp::kMul:
      return a->eval(xu) * b->eval(xu);
    case ExprOp::kNeg:
      return -a->eval(xu);
    case ExprOp::kPow: {
      const double base = a->eval(xu);
      double r = 1.0;
      for (unsigned i = 0; i < power; ++i) r *= base;
      return r;
    }
    case ExprOp::kSin:
      return std::sin(a->eval(xu));
    case ExprOp::kCos:
      return std::cos(a->eval(xu));
    case ExprOp::kTanh:
      return std::tanh(a->eval(xu));
    case ExprOp::kExp:
      return std::exp(a->eval(xu));
  }
  return 0.0;
}

interval::Interval Expr::eval(const interval::IVec& xu) const {
  using interval::Interval;
  switch (op) {
    case ExprOp::kConst:
      return Interval(value);
    case ExprOp::kVar:
      return xu[var];
    case ExprOp::kAdd:
      return a->eval(xu) + b->eval(xu);
    case ExprOp::kMul:
      return a->eval(xu) * b->eval(xu);
    case ExprOp::kNeg:
      return -a->eval(xu);
    case ExprOp::kPow:
      return interval::pow_n(a->eval(xu), power);
    case ExprOp::kSin:
      return interval::sin(a->eval(xu));
    case ExprOp::kCos:
      return interval::cos(a->eval(xu));
    case ExprOp::kTanh:
      return interval::tanh(a->eval(xu));
    case ExprOp::kExp:
      return interval::exp(a->eval(xu));
  }
  return Interval(0.0);
}

ExprPtr Expr::derivative(std::size_t i) const {
  switch (op) {
    case ExprOp::kConst:
      return constant(0.0);
    case ExprOp::kVar:
      return constant(var == i ? 1.0 : 0.0);
    case ExprOp::kAdd:
      return a->derivative(i) + b->derivative(i);
    case ExprOp::kMul:
      return a->derivative(i) * b + a * b->derivative(i);
    case ExprOp::kNeg:
      return -a->derivative(i);
    case ExprOp::kPow: {
      // d(a^n) = n a^(n-1) a'.
      ExprPtr lower =
          power == 2 ? a : ode::pow(a, power - 1);
      return constant(static_cast<double>(power)) * lower * a->derivative(i);
    }
    case ExprOp::kSin:
      return ode::cos(a) * a->derivative(i);
    case ExprOp::kCos:
      return -ode::sin(a) * a->derivative(i);
    case ExprOp::kTanh: {
      // d tanh = 1 - tanh^2.
      return (constant(1.0) + (-(ode::pow(ode::tanh(a), 2)))) *
             a->derivative(i);
    }
    case ExprOp::kExp:
      return ode::exp(a) * a->derivative(i);
  }
  return constant(0.0);
}

std::string Expr::to_string() const {
  std::ostringstream os;
  switch (op) {
    case ExprOp::kConst:
      os << value;
      break;
    case ExprOp::kVar:
      os << 'v' << var;
      break;
    case ExprOp::kAdd:
      os << '(' << a->to_string() << " + " << b->to_string() << ')';
      break;
    case ExprOp::kMul:
      os << '(' << a->to_string() << " * " << b->to_string() << ')';
      break;
    case ExprOp::kNeg:
      os << "(-" << a->to_string() << ')';
      break;
    case ExprOp::kPow:
      os << a->to_string() << '^' << power;
      break;
    case ExprOp::kSin:
      os << "sin(" << a->to_string() << ')';
      break;
    case ExprOp::kCos:
      os << "cos(" << a->to_string() << ')';
      break;
    case ExprOp::kTanh:
      os << "tanh(" << a->to_string() << ')';
      break;
    case ExprOp::kExp:
      os << "exp(" << a->to_string() << ')';
      break;
  }
  return os.str();
}

}  // namespace dwv::ode
