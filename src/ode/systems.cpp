#include "ode/systems.hpp"

namespace dwv::ode {

using linalg::Mat;
using linalg::Vec;
using poly::Exponents;
using poly::Poly;

namespace {
// Convenience: monomial over (x..., u...) with nvars variables.
Poly mono(std::size_t nvars, std::initializer_list<std::uint32_t> exps,
          double c) {
  Poly p(nvars);
  Exponents e(exps);
  e.resize(nvars, 0);
  p.add_term(e, c);
  return p;
}
}  // namespace

// ---------------------------------------------------------------- ACC ----

Vec AccSystem::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 2 && u.size() == 1);
  return Vec{v_front_ - x[1], k_ * x[1] + u[0]};
}

Mat AccSystem::dfdx(const Vec&, const Vec&) const {
  return Mat{{0.0, -1.0}, {0.0, k_}};
}

Mat AccSystem::dfdu(const Vec&, const Vec&) const {
  return Mat{{0.0}, {1.0}};
}

std::vector<Poly> AccSystem::poly_dynamics() const {
  // Variables: (x0=s, x1=v, x2=u).
  const std::size_t nv = 3;
  std::vector<Poly> f(2, Poly(nv));
  f[0] = mono(nv, {0, 0, 0}, v_front_) + mono(nv, {0, 1, 0}, -1.0);
  f[1] = mono(nv, {0, 1, 0}, k_) + mono(nv, {0, 0, 1}, 1.0);
  return f;
}

std::optional<LtiForm> AccSystem::lti() const {
  return LtiForm{Mat{{0.0, -1.0}, {0.0, k_}}, Mat{{0.0}, {1.0}},
                 Vec{v_front_, 0.0}};
}

// ---------------------------------------------------------- oscillator ----

Vec VanDerPolSystem::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 2 && u.size() == 1);
  return Vec{x[1], gamma_ * (1.0 - x[0] * x[0]) * x[1] - x[0] + u[0]};
}

Mat VanDerPolSystem::dfdx(const Vec& x, const Vec&) const {
  return Mat{{0.0, 1.0},
             {-2.0 * gamma_ * x[0] * x[1] - 1.0,
              gamma_ * (1.0 - x[0] * x[0])}};
}

Mat VanDerPolSystem::dfdu(const Vec&, const Vec&) const {
  return Mat{{0.0}, {1.0}};
}

std::vector<Poly> VanDerPolSystem::poly_dynamics() const {
  // Variables: (x0, x1, u).
  const std::size_t nv = 3;
  std::vector<Poly> f(2, Poly(nv));
  f[0] = mono(nv, {0, 1, 0}, 1.0);
  f[1] = mono(nv, {0, 1, 0}, gamma_) + mono(nv, {2, 1, 0}, -gamma_) +
         mono(nv, {1, 0, 0}, -1.0) + mono(nv, {0, 0, 1}, 1.0);
  return f;
}

// ------------------------------------------------------------- 3-D sys ----

Vec Sys3d::f(const Vec& x, const Vec& u) const {
  assert(x.size() == 3 && u.size() == 1);
  return Vec{x[2] * x[2] * x[2] - x[1], x[2], u[0]};
}

Mat Sys3d::dfdx(const Vec& x, const Vec&) const {
  return Mat{{0.0, -1.0, 3.0 * x[2] * x[2]},
             {0.0, 0.0, 1.0},
             {0.0, 0.0, 0.0}};
}

Mat Sys3d::dfdu(const Vec&, const Vec&) const {
  return Mat{{0.0}, {0.0}, {1.0}};
}

std::vector<Poly> Sys3d::poly_dynamics() const {
  // Variables: (x0, x1, x2, u).
  const std::size_t nv = 4;
  std::vector<Poly> f(3, Poly(nv));
  f[0] = mono(nv, {0, 0, 3, 0}, 1.0) + mono(nv, {0, 1, 0, 0}, -1.0);
  f[1] = mono(nv, {0, 0, 1, 0}, 1.0);
  f[2] = mono(nv, {0, 0, 0, 1}, 1.0);
  return f;
}

}  // namespace dwv::ode
