// Expression trees for non-polynomial dynamics (sin/cos/tanh/exp nodes),
// with numeric evaluation, interval evaluation, and symbolic
// differentiation. This lifts the framework beyond polynomial vector
// fields: an ExprSystem (e.g. the pendulum) plugs into simulation, the RL
// baselines (via symbolic Jacobians), and — through reach::ExprTmDynamics —
// the Taylor-model flowpipe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interval/ivec.hpp"
#include "linalg/vec.hpp"

namespace dwv::ode {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprOp {
  kConst,   // value
  kVar,     // variable index (over the combined (x, u) vector)
  kAdd,     // a + b
  kMul,     // a * b
  kNeg,     // -a
  kPow,     // a^n, n >= 2 integer
  kSin,
  kCos,
  kTanh,
  kExp,
};

/// Immutable expression node. Build with the free functions below.
class Expr {
 public:
  ExprOp op;
  double value = 0.0;       // kConst
  std::size_t var = 0;      // kVar
  unsigned power = 0;       // kPow
  ExprPtr a;                // first operand
  ExprPtr b;                // second operand (kAdd/kMul)

  /// Numeric evaluation over the combined vector (x..., u...).
  double eval(const linalg::Vec& xu) const;
  /// Sound interval evaluation.
  interval::Interval eval(const interval::IVec& xu) const;
  /// Symbolic partial derivative with respect to variable i.
  ExprPtr derivative(std::size_t i) const;
  /// Human-readable rendering (for debugging and docs).
  std::string to_string() const;
};

ExprPtr constant(double v);
ExprPtr var(std::size_t index);
ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a);
ExprPtr pow(ExprPtr a, unsigned n);
ExprPtr sin(ExprPtr a);
ExprPtr cos(ExprPtr a);
ExprPtr tanh(ExprPtr a);
ExprPtr exp(ExprPtr a);

}  // namespace dwv::ode
