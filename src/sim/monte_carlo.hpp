// Monte-Carlo evaluation of the experimental safe-control (SC) and
// goal-reaching (GR) rates, exactly as the paper measures them: simulate
// the discretized system from random initial states in X0 and count.
#pragma once

#include <random>

#include "sim/simulate.hpp"

namespace dwv::sim {

struct McStats {
  double safe_rate = 0.0;   ///< SC: fraction of traces that never hit Xu
  double goal_rate = 0.0;   ///< GR: fraction of traces that reached Xg
  double mean_reach_step = 0.0;  ///< among reaching traces
  std::size_t samples = 0;
};

/// Simulates `samples` random initial states (paper: 500) from spec.x0.
McStats monte_carlo_rates(const ode::System& sys, const nn::Controller& ctrl,
                          const ode::ReachAvoidSpec& spec,
                          std::size_t samples, std::uint64_t seed,
                          const SimOptions& opt = {});

}  // namespace dwv::sim
