#include "sim/simulate.hpp"

#include <cmath>

namespace dwv::sim {

using linalg::Vec;

Vec rk4_step(const ode::System& sys, const Vec& x, const Vec& u, double dt) {
  const Vec k1 = sys.f(x, u);
  const Vec k2 = sys.f(x + 0.5 * dt * k1, u);
  const Vec k3 = sys.f(x + 0.5 * dt * k2, u);
  const Vec k4 = sys.f(x + dt * k3, u);
  return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
}

Trace simulate(const ode::System& sys, const nn::Controller& ctrl,
               const Vec& x0, double delta, std::size_t steps,
               const SimOptions& opt) {
  Trace tr;
  tr.delta = delta;
  tr.states.reserve(steps + 1);
  tr.inputs.reserve(steps);
  tr.fine_states.reserve(steps * opt.substeps + 1);

  Vec x = x0;
  tr.states.push_back(x);
  tr.fine_states.push_back(x);
  const double h = delta / static_cast<double>(opt.substeps);

  for (std::size_t i = 0; i < steps; ++i) {
    const Vec u = ctrl.act(x);
    tr.inputs.push_back(u);
    for (std::size_t k = 0; k < opt.substeps; ++k) {
      x = rk4_step(sys, x, u, h);
      if (!x.all_finite() || x.norm_inf() > opt.divergence_bound) {
        tr.diverged = true;
        tr.fine_states.push_back(x);
        tr.states.push_back(x);
        return tr;
      }
      tr.fine_states.push_back(x);
    }
    tr.states.push_back(x);
  }
  return tr;
}

TraceVerdict evaluate_trace(const Trace& trace,
                            const ode::ReachAvoidSpec& spec) {
  TraceVerdict v;
  if (trace.diverged) return v;  // unsafe and not goal-reaching

  for (std::size_t i = 0; i < trace.states.size(); ++i) {
    if (spec.goal.contains(trace.states[i])) {
      v.reached = true;
      v.reach_step = i;
      break;
    }
  }

  // Under reach-avoid (stop-at-goal) semantics the run ends at the reach
  // time, so safety is only required up to that point.
  std::size_t fine_limit = trace.fine_states.size();
  if (spec.stop_at_goal && v.reached && trace.states.size() > 1) {
    const std::size_t substeps =
        (trace.fine_states.size() - 1) / (trace.states.size() - 1);
    fine_limit = std::min(fine_limit, v.reach_step * substeps + 1);
  }
  v.safe = true;
  for (std::size_t i = 0; i < fine_limit; ++i) {
    if (spec.unsafe.contains(trace.fine_states[i])) {
      v.safe = false;
      break;
    }
  }
  return v;
}

}  // namespace dwv::sim
