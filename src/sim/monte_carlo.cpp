#include "sim/monte_carlo.hpp"

namespace dwv::sim {

McStats monte_carlo_rates(const ode::System& sys, const nn::Controller& ctrl,
                          const ode::ReachAvoidSpec& spec,
                          std::size_t samples, std::uint64_t seed,
                          const SimOptions& opt) {
  std::mt19937_64 rng(seed);
  McStats st;
  st.samples = samples;
  std::size_t safe = 0;
  std::size_t reached = 0;
  double reach_steps = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const linalg::Vec x0 = spec.x0.sample(rng);
    const Trace tr = simulate(sys, ctrl, x0, spec.delta, spec.steps, opt);
    const TraceVerdict v = evaluate_trace(tr, spec);
    if (v.safe) ++safe;
    if (v.reached) {
      ++reached;
      reach_steps += static_cast<double>(v.reach_step);
    }
  }
  st.safe_rate = static_cast<double>(safe) / static_cast<double>(samples);
  st.goal_rate = static_cast<double>(reached) / static_cast<double>(samples);
  st.mean_reach_step =
      reached ? reach_steps / static_cast<double>(reached) : 0.0;
  return st;
}

}  // namespace dwv::sim
