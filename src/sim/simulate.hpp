// Sampled-data closed-loop simulation: the controller reads the state every
// delta seconds and applies a zero-order-hold input; between samples the
// continuous dynamics are integrated with RK4.
#pragma once

#include <vector>

#include "nn/controller.hpp"
#include "ode/spec.hpp"
#include "ode/system.hpp"

namespace dwv::sim {

/// Recorded closed-loop trajectory.
struct Trace {
  /// States at control instants t = 0, delta, 2 delta, ... (steps + 1).
  std::vector<linalg::Vec> states;
  /// Inputs held over each period (steps).
  std::vector<linalg::Vec> inputs;
  /// Fine-grained states at every RK4 substep (steps * substeps + 1),
  /// used for the continuous-time safety check.
  std::vector<linalg::Vec> fine_states;
  double delta = 0.0;
  /// True when the state left the finite range (NaN/inf or exploded).
  bool diverged = false;
};

/// One RK4 step of x' = f(x, u) with constant u over dt.
linalg::Vec rk4_step(const ode::System& sys, const linalg::Vec& x,
                     const linalg::Vec& u, double dt);

struct SimOptions {
  std::size_t substeps = 8;        ///< RK4 sub-steps per control period.
  double divergence_bound = 1e6;   ///< |x|_inf beyond this flags divergence.
};

/// Simulates `steps` control periods from x0.
Trace simulate(const ode::System& sys, const nn::Controller& ctrl,
               const linalg::Vec& x0, double delta, std::size_t steps,
               const SimOptions& opt = {});

/// Reach-avoid verdict of a single trace against a spec (Definition 1),
/// checked at the fine-grained resolution.
struct TraceVerdict {
  bool safe = false;      ///< never entered Xu (and never diverged)
  bool reached = false;   ///< entered Xg at some checked instant
  std::size_t reach_step = 0;  ///< first control step index inside Xg
};
TraceVerdict evaluate_trace(const Trace& trace,
                            const ode::ReachAvoidSpec& spec);

}  // namespace dwv::sim
