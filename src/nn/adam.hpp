// Adam optimizer over flat parameter vectors.
#pragma once

#include "linalg/vec.hpp"

namespace dwv::nn {

/// Standard Adam (Kingma & Ba) on a flattened parameter vector.
class Adam {
 public:
  explicit Adam(std::size_t n, double lr = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  /// Returns the update to *add* to the parameters for gradient-descent on
  /// the given gradient (i.e. already negated and scaled by the step size).
  linalg::Vec step(const linalg::Vec& grad);

  void reset();
  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  linalg::Vec m_;
  linalg::Vec v_;
};

}  // namespace dwv::nn
