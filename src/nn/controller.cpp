#include "nn/controller.hpp"

#include <sstream>

namespace dwv::nn {

using linalg::Mat;
using linalg::Vec;

LinearController::LinearController(std::size_t state_dim,
                                   std::size_t input_dim)
    : k_(input_dim, state_dim) {}

LinearController::LinearController(Mat k) : k_(std::move(k)) {}

std::string LinearController::describe() const {
  std::ostringstream os;
  os << "linear(" << k_.rows() << 'x' << k_.cols() << ')';
  return os.str();
}

Vec LinearController::params() const {
  Vec p(k_.rows() * k_.cols());
  std::size_t off = 0;
  for (std::size_t i = 0; i < k_.rows(); ++i)
    for (std::size_t j = 0; j < k_.cols(); ++j) p[off++] = k_(i, j);
  return p;
}

void LinearController::set_params(const Vec& theta) {
  assert(theta.size() == k_.rows() * k_.cols());
  std::size_t off = 0;
  for (std::size_t i = 0; i < k_.rows(); ++i)
    for (std::size_t j = 0; j < k_.cols(); ++j) k_(i, j) = theta[off++];
}

MlpController::MlpController(std::vector<std::size_t> dims, double scale,
                             Activation hidden, Activation output)
    : mlp_(dims, hidden, output), scale_(scale) {}

MlpController::MlpController(Mlp mlp, double scale)
    : mlp_(std::move(mlp)), scale_(scale) {}

std::string MlpController::describe() const {
  std::ostringstream os;
  os << "mlp(";
  os << mlp_.in_dim();
  for (const auto& l : mlp_.layers()) os << '-' << l.out_dim();
  os << ", scale=" << scale_ << ')';
  return os.str();
}

Vec MlpController::act(const Vec& x) const {
  Vec u = mlp_.forward(x);
  return u * scale_;
}

}  // namespace dwv::nn
