// Polynomial state-feedback controllers u_k = p_k(x): a middle ground
// between linear gains and neural networks. Their Taylor-model abstraction
// is EXACT (polynomials compose symbolically with no activation remainder),
// which makes them the most verification-friendly nonlinear family the
// framework supports.
#pragma once

#include "nn/controller.hpp"
#include "poly/poly.hpp"

namespace dwv::nn {

/// u_k = sum over a fixed monomial basis of theta_{k,j} m_j(x).
/// The basis is every monomial of total degree <= `degree` in the state
/// variables (including the constant), so theta has m * C(n+d, d) entries.
class PolynomialController final : public Controller {
 public:
  /// Zero-initialized controller over all monomials of degree <= `degree`.
  PolynomialController(std::size_t state_dim, std::size_t input_dim,
                       std::uint32_t degree);

  std::string describe() const override;
  std::size_t state_dim() const override { return state_dim_; }
  std::size_t input_dim() const override { return input_dim_; }
  linalg::Vec act(const linalg::Vec& x) const override;
  linalg::Vec params() const override;
  void set_params(const linalg::Vec& theta) override;
  std::unique_ptr<Controller> clone() const override;

  std::uint32_t degree() const { return degree_; }
  /// The monomial basis (exponent vectors), shared by all outputs.
  const std::vector<poly::Exponents>& basis() const { return basis_; }
  /// Output k as a polynomial over the state variables.
  poly::Poly output_poly(std::size_t k) const;

  /// Random initialization with the given coefficient scale.
  void init_random(std::mt19937_64& rng, double scale);

 private:
  std::size_t state_dim_;
  std::size_t input_dim_;
  std::uint32_t degree_;
  std::vector<poly::Exponents> basis_;
  // basis_ flattened row-major (basis index x state variable) so act() scans
  // one contiguous array instead of chasing per-monomial vectors.
  std::vector<std::uint32_t> flat_basis_;
  // coeffs_[k][j]: coefficient of basis_[j] in output k.
  std::vector<std::vector<double>> coeffs_;
};

}  // namespace dwv::nn
