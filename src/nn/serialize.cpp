#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dwv::nn {

namespace {

constexpr const char* kMagic = "dwv-controller v1";

const char* act_name(Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "identity";
}

Activation act_from(const std::string& s) {
  if (s == "identity") return Activation::kIdentity;
  if (s == "relu") return Activation::kRelu;
  if (s == "tanh") return Activation::kTanh;
  if (s == "sigmoid") return Activation::kSigmoid;
  throw std::runtime_error("unknown activation: " + s);
}

void write_params(std::ostream& os, const linalg::Vec& p) {
  os << std::setprecision(17);
  for (std::size_t i = 0; i < p.size(); ++i) {
    os << p[i] << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  os << '\n';
}

linalg::Vec read_params(std::istream& is, std::size_t n) {
  linalg::Vec p(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> p[i])) {
      throw std::runtime_error("controller file truncated");
    }
  }
  return p;
}

}  // namespace

void save_controller(std::ostream& os, const Controller& ctrl) {
  os << kMagic << '\n';
  if (const auto* lin = dynamic_cast<const LinearController*>(&ctrl)) {
    os << "linear\n";
    os << lin->input_dim() << ' ' << lin->state_dim() << '\n';
    write_params(os, lin->params());
  } else if (const auto* mc = dynamic_cast<const MlpController*>(&ctrl)) {
    os << "mlp\n";
    const Mlp& net = mc->mlp();
    os << net.in_dim();
    for (const auto& layer : net.layers()) os << ' ' << layer.out_dim();
    os << '\n';
    os << act_name(net.layers().front().act) << ' '
       << act_name(net.layers().back().act) << '\n';
    os << std::setprecision(17) << mc->scale() << '\n';
    write_params(os, net.params());
  } else if (const auto* pc =
                 dynamic_cast<const PolynomialController*>(&ctrl)) {
    os << "poly\n";
    os << pc->state_dim() << ' ' << pc->input_dim() << ' ' << pc->degree()
       << '\n';
    write_params(os, pc->params());
  } else {
    throw std::runtime_error("save_controller: unsupported controller type");
  }
  if (!os) throw std::runtime_error("save_controller: stream failure");
}

ControllerPtr load_controller(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("not a dwv controller file");
  }
  std::string type;
  if (!(is >> type)) throw std::runtime_error("missing controller type");

  if (type == "linear") {
    std::size_t m = 0;
    std::size_t n = 0;
    if (!(is >> m >> n)) throw std::runtime_error("bad linear header");
    auto ctrl = std::make_unique<LinearController>(n, m);
    ctrl->set_params(read_params(is, m * n));
    return ctrl;
  }
  if (type == "mlp") {
    // Dims are on the rest of the current line.
    std::getline(is, line);  // consume end of type line
    std::getline(is, line);
    std::istringstream dims_line(line);
    std::vector<std::size_t> dims;
    std::size_t d = 0;
    while (dims_line >> d) dims.push_back(d);
    if (dims.size() < 2) throw std::runtime_error("bad mlp dims");
    std::string hidden;
    std::string output;
    double scale = 1.0;
    if (!(is >> hidden >> output >> scale)) {
      throw std::runtime_error("bad mlp header");
    }
    auto ctrl = std::make_unique<MlpController>(dims, scale,
                                                act_from(hidden),
                                                act_from(output));
    ctrl->set_params(read_params(is, ctrl->mlp().param_count()));
    return ctrl;
  }
  if (type == "poly") {
    std::size_t n = 0;
    std::size_t m = 0;
    std::uint32_t deg = 0;
    if (!(is >> n >> m >> deg)) throw std::runtime_error("bad poly header");
    auto ctrl = std::make_unique<PolynomialController>(n, m, deg);
    ctrl->set_params(read_params(is, ctrl->param_count()));
    return ctrl;
  }
  throw std::runtime_error("unknown controller type: " + type);
}

void save_controller_file(const std::string& path, const Controller& ctrl) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  save_controller(os, ctrl);
}

ControllerPtr load_controller_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return load_controller(is);
}

}  // namespace dwv::nn
