#include "nn/adam.hpp"

#include <cassert>
#include <cmath>

namespace dwv::nn {

Adam::Adam(std::size_t n, double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), m_(n), v_(n) {}

linalg::Vec Adam::step(const linalg::Vec& grad) {
  assert(grad.size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  linalg::Vec upd(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    upd[i] = -lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
  return upd;
}

void Adam::reset() {
  t_ = 0;
  m_ = linalg::Vec(m_.size());
  v_ = linalg::Vec(v_.size());
}

}  // namespace dwv::nn
