#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>

namespace dwv::nn {

using linalg::Mat;
using linalg::Vec;

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activate_grad(Activation a, double x) {
  switch (a) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return x > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}

Mlp::Mlp(const std::vector<std::size_t>& dims, Activation hidden_act,
         Activation output_act) {
  assert(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    DenseLayer layer;
    layer.w = Mat(dims[l + 1], dims[l]);
    layer.b = Vec(dims[l + 1]);
    layer.act = (l + 2 == dims.size()) ? output_act : hidden_act;
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::in_dim() const {
  return layers_.empty() ? 0 : layers_.front().in_dim();
}
std::size_t Mlp::out_dim() const {
  return layers_.empty() ? 0 : layers_.back().out_dim();
}

std::size_t Mlp::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.param_count();
  return n;
}

void Mlp::init_random(std::mt19937_64& rng, double scale) {
  for (auto& l : layers_) {
    const double std_dev =
        scale * std::sqrt(2.0 / static_cast<double>(l.in_dim()));
    std::normal_distribution<double> dist(0.0, std_dev);
    for (std::size_t i = 0; i < l.w.rows(); ++i)
      for (std::size_t j = 0; j < l.w.cols(); ++j) l.w(i, j) = dist(rng);
    for (std::size_t i = 0; i < l.b.size(); ++i) l.b[i] = 0.0;
  }
}

Vec Mlp::forward(const Vec& x) const {
  Vec h = x;
  for (const auto& l : layers_) {
    Vec z = l.w * h + l.b;
    for (auto& v : z) v = activate(l.act, v);
    h = std::move(z);
  }
  return h;
}

ForwardCache Mlp::forward_cached(const Vec& x) const {
  ForwardCache c;
  c.inputs.reserve(layers_.size());
  c.preacts.reserve(layers_.size());
  Vec h = x;
  for (const auto& l : layers_) {
    c.inputs.push_back(h);
    Vec z = l.w * h + l.b;
    c.preacts.push_back(z);
    for (auto& v : z) v = activate(l.act, v);
    h = std::move(z);
  }
  c.output = std::move(h);
  return c;
}

Gradients Mlp::backward(const ForwardCache& cache,
                        const Vec& dloss_dy) const {
  assert(cache.inputs.size() == layers_.size());
  Gradients g;
  g.dparams = Vec(param_count());

  // Offsets of each layer's parameters in the flat vector.
  std::vector<std::size_t> offs(layers_.size());
  std::size_t off = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    offs[l] = off;
    off += layers_[l].param_count();
  }

  Vec delta = dloss_dy;  // dL/d(layer output)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const DenseLayer& l = layers_[li];
    // Through the activation: dL/dz.
    Vec dz(delta.size());
    for (std::size_t i = 0; i < delta.size(); ++i)
      dz[i] = delta[i] * activate_grad(l.act, cache.preacts[li][i]);
    // Parameter gradients.
    const Vec& in = cache.inputs[li];
    double* wp = g.dparams.data() + offs[li];
    for (std::size_t i = 0; i < l.w.rows(); ++i)
      for (std::size_t j = 0; j < l.w.cols(); ++j)
        wp[i * l.w.cols() + j] = dz[i] * in[j];
    double* bp = wp + l.w.rows() * l.w.cols();
    for (std::size_t i = 0; i < l.b.size(); ++i) bp[i] = dz[i];
    // Through the weights: dL/d(input).
    Vec din(l.in_dim());
    for (std::size_t j = 0; j < l.in_dim(); ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < l.w.rows(); ++i) s += l.w(i, j) * dz[i];
      din[j] = s;
    }
    delta = std::move(din);
  }
  g.dinput = std::move(delta);
  return g;
}

Vec Mlp::params() const {
  Vec p(param_count());
  std::size_t off = 0;
  for (const auto& l : layers_) {
    for (std::size_t i = 0; i < l.w.rows(); ++i)
      for (std::size_t j = 0; j < l.w.cols(); ++j)
        p[off++] = l.w(i, j);
    for (std::size_t i = 0; i < l.b.size(); ++i) p[off++] = l.b[i];
  }
  return p;
}

void Mlp::set_params(const Vec& p) {
  assert(p.size() == param_count());
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (std::size_t i = 0; i < l.w.rows(); ++i)
      for (std::size_t j = 0; j < l.w.cols(); ++j)
        l.w(i, j) = p[off++];
    for (std::size_t i = 0; i < l.b.size(); ++i) l.b[i] = p[off++];
  }
}

void Mlp::add_scaled(const Vec& d, double s) {
  assert(d.size() == param_count());
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (std::size_t i = 0; i < l.w.rows(); ++i)
      for (std::size_t j = 0; j < l.w.cols(); ++j)
        l.w(i, j) += s * d[off++];
    for (std::size_t i = 0; i < l.b.size(); ++i) l.b[i] += s * d[off++];
  }
}

Vec Mlp::lipschitz_per_input() const {
  // Propagate the per-input sensitivity vector through |W| products;
  // activation slopes are within [0, 1] for ReLU/tanh/sigmoid/identity.
  const std::size_t n = in_dim();
  Vec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec c(n);
    c[i] = 1.0;
    for (const auto& l : layers_) {
      Vec nc(l.out_dim());
      for (std::size_t r = 0; r < l.out_dim(); ++r) {
        double s = 0.0;
        for (std::size_t j = 0; j < l.in_dim(); ++j)
          s += std::abs(l.w(r, j)) * c[j];
        nc[r] = s;
      }
      c = std::move(nc);
    }
    double m = 0.0;
    for (double v : c) m = std::max(m, v);
    out[i] = m;
  }
  return out;
}

}  // namespace dwv::nn
