#include "nn/poly_controller.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>

namespace dwv::nn {

namespace {

// Enumerates all exponent vectors over n variables with total degree <= d,
// in graded lexicographic order (constant first).
std::vector<poly::Exponents> monomial_basis(std::size_t n, std::uint32_t d) {
  std::vector<poly::Exponents> out;
  poly::Exponents e(n, 0);
  // Depth-first enumeration.
  const std::function<void(std::size_t, std::uint32_t)> rec =
      [&](std::size_t i, std::uint32_t remaining) {
        if (i == n) {
          out.push_back(e);
          return;
        }
        for (std::uint32_t k = 0; k <= remaining; ++k) {
          e[i] = k;
          rec(i + 1, remaining - k);
        }
        e[i] = 0;
      };
  rec(0, d);
  // Sort by total degree then lexicographic for a stable layout.
  std::sort(out.begin(), out.end(),
            [](const poly::Exponents& a, const poly::Exponents& b) {
              const auto da = poly::total_degree(a);
              const auto db = poly::total_degree(b);
              if (da != db) return da < db;
              return a < b;
            });
  return out;
}

}  // namespace

PolynomialController::PolynomialController(std::size_t state_dim,
                                           std::size_t input_dim,
                                           std::uint32_t degree)
    : state_dim_(state_dim),
      input_dim_(input_dim),
      degree_(degree),
      basis_(monomial_basis(state_dim, degree)),
      coeffs_(input_dim, std::vector<double>(basis_.size(), 0.0)) {
  flat_basis_.reserve(basis_.size() * state_dim_);
  for (const poly::Exponents& e : basis_) {
    flat_basis_.insert(flat_basis_.end(), e.begin(), e.end());
  }
}

std::string PolynomialController::describe() const {
  std::ostringstream os;
  os << "poly(deg=" << degree_ << ", " << basis_.size() << " monomials x "
     << input_dim_ << " outputs)";
  return os.str();
}

linalg::Vec PolynomialController::act(const linalg::Vec& x) const {
  assert(x.size() == state_dim_);
  linalg::Vec u(input_dim_);
  for (std::size_t k = 0; k < input_dim_; ++k) {
    double s = 0.0;
    const std::uint32_t* exps = flat_basis_.data();
    for (std::size_t j = 0; j < basis_.size(); ++j, exps += state_dim_) {
      double m = coeffs_[k][j];
      if (m == 0.0) continue;
      for (std::size_t i = 0; i < state_dim_; ++i) {
        for (std::uint32_t p = 0; p < exps[i]; ++p) m *= x[i];
      }
      s += m;
    }
    u[k] = s;
  }
  return u;
}

linalg::Vec PolynomialController::params() const {
  linalg::Vec p(input_dim_ * basis_.size());
  std::size_t off = 0;
  for (const auto& row : coeffs_) {
    for (double c : row) p[off++] = c;
  }
  return p;
}

void PolynomialController::set_params(const linalg::Vec& theta) {
  assert(theta.size() == input_dim_ * basis_.size());
  std::size_t off = 0;
  for (auto& row : coeffs_) {
    for (double& c : row) c = theta[off++];
  }
}

std::unique_ptr<Controller> PolynomialController::clone() const {
  auto c = std::make_unique<PolynomialController>(state_dim_, input_dim_,
                                                  degree_);
  c->coeffs_ = coeffs_;
  return c;
}

poly::Poly PolynomialController::output_poly(std::size_t k) const {
  assert(k < input_dim_);
  poly::Poly p(state_dim_);
  for (std::size_t j = 0; j < basis_.size(); ++j) {
    p.add_term(basis_[j], coeffs_[k][j]);
  }
  return p;
}

void PolynomialController::init_random(std::mt19937_64& rng, double scale) {
  std::normal_distribution<double> d(0.0, scale);
  for (auto& row : coeffs_) {
    for (double& c : row) c = d(rng);
  }
}

}  // namespace dwv::nn
