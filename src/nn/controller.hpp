// Feedback controller interface kappa_theta : X -> U, and the two concrete
// families the paper studies: linear state feedback and MLP controllers.
//
// Controllers expose their parameters as a flat vector so the
// verification-in-the-loop learner can apply SPSA perturbations uniformly.
#pragma once

#include <memory>
#include <string>

#include "linalg/vec.hpp"
#include "nn/mlp.hpp"

namespace dwv::nn {

class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string describe() const = 0;
  virtual std::size_t state_dim() const = 0;
  virtual std::size_t input_dim() const = 0;

  /// Control action u = kappa_theta(x).
  virtual linalg::Vec act(const linalg::Vec& x) const = 0;

  /// Flat parameter vector theta.
  virtual linalg::Vec params() const = 0;
  virtual void set_params(const linalg::Vec& theta) = 0;
  std::size_t param_count() const { return params().size(); }

  virtual std::unique_ptr<Controller> clone() const = 0;
};

using ControllerPtr = std::unique_ptr<Controller>;

/// Linear state feedback u = K x (K is m x n, theta = vec(K)).
class LinearController final : public Controller {
 public:
  LinearController(std::size_t state_dim, std::size_t input_dim);
  explicit LinearController(linalg::Mat k);

  std::string describe() const override;
  std::size_t state_dim() const override { return k_.cols(); }
  std::size_t input_dim() const override { return k_.rows(); }
  linalg::Vec act(const linalg::Vec& x) const override { return k_ * x; }
  linalg::Vec params() const override;
  void set_params(const linalg::Vec& theta) override;
  std::unique_ptr<Controller> clone() const override {
    return std::make_unique<LinearController>(k_);
  }

  const linalg::Mat& gain() const { return k_; }

 private:
  linalg::Mat k_;
};

/// Neural-network controller u = scale * mlp(x). The paper's architecture:
/// ReLU hidden layers, Tanh output; `scale` maps the bounded Tanh output to
/// the actuator range.
class MlpController final : public Controller {
 public:
  MlpController(std::vector<std::size_t> dims, double scale,
                Activation hidden = Activation::kRelu,
                Activation output = Activation::kTanh);
  MlpController(Mlp mlp, double scale);

  std::string describe() const override;
  std::size_t state_dim() const override { return mlp_.in_dim(); }
  std::size_t input_dim() const override { return mlp_.out_dim(); }
  linalg::Vec act(const linalg::Vec& x) const override;
  linalg::Vec params() const override { return mlp_.params(); }
  void set_params(const linalg::Vec& theta) override {
    mlp_.set_params(theta);
  }
  std::unique_ptr<Controller> clone() const override {
    return std::make_unique<MlpController>(mlp_, scale_);
  }

  void init_random(std::mt19937_64& rng, double weight_scale = 1.0) {
    mlp_.init_random(rng, weight_scale);
  }

  const Mlp& mlp() const { return mlp_; }
  Mlp& mutable_mlp() { return mlp_; }
  double scale() const { return scale_; }

 private:
  Mlp mlp_;
  double scale_;
};

}  // namespace dwv::nn
