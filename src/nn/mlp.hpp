// Fully-connected feed-forward network with manual backpropagation.
//
// This is the controller family the paper targets ("ReLU for the hidden
// layers and Tanh as the output layer") and also powers the DDPG/SVG
// baselines (actor and critic networks). No autodiff framework: layers are
// small and the explicit backward pass keeps the dependency footprint zero.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vec.hpp"

namespace dwv::nn {

enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

double activate(Activation a, double x);
/// Derivative expressed via the pre-activation input x.
double activate_grad(Activation a, double x);

/// One dense layer y = act(W x + b).
struct DenseLayer {
  linalg::Mat w;  // out x in
  linalg::Vec b;  // out
  Activation act = Activation::kIdentity;

  std::size_t in_dim() const { return w.cols(); }
  std::size_t out_dim() const { return w.rows(); }
  std::size_t param_count() const { return w.rows() * w.cols() + b.size(); }
};

/// Cache of intermediate values from a forward pass, consumed by backward().
struct ForwardCache {
  std::vector<linalg::Vec> inputs;   // input to each layer
  std::vector<linalg::Vec> preacts;  // W x + b per layer
  linalg::Vec output;
};

/// Gradient bundle produced by a backward pass.
struct Gradients {
  linalg::Vec dparams;  // flattened, same layout as Mlp::params()
  linalg::Vec dinput;   // dL/dx
};

class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, h1, ..., out}; hidden activation applied to all but the
  /// last layer, which gets `output_act`.
  Mlp(const std::vector<std::size_t>& dims, Activation hidden_act,
      Activation output_act);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  std::size_t param_count() const;
  const std::vector<DenseLayer>& layers() const { return layers_; }

  /// He/Xavier-style random initialization.
  void init_random(std::mt19937_64& rng, double scale = 1.0);

  linalg::Vec forward(const linalg::Vec& x) const;
  ForwardCache forward_cached(const linalg::Vec& x) const;

  /// Backpropagates dL/dy through the cached forward pass.
  Gradients backward(const ForwardCache& cache,
                     const linalg::Vec& dloss_dy) const;

  /// Flattened parameter vector (row-major weights then biases, per layer).
  linalg::Vec params() const;
  void set_params(const linalg::Vec& p);
  /// In-place axpy on the flattened parameters: theta += s * d.
  void add_scaled(const linalg::Vec& d, double s);

  /// Sound per-input-coordinate Lipschitz bound |d out_k / d x_i| <= L[i]
  /// (max over outputs), assuming every activation slope is within [0, 1].
  linalg::Vec lipschitz_per_input() const;

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace dwv::nn
