// Plain-text (de)serialization of controllers, so learned (and formally
// certified) controllers can be persisted and reloaded for deployment or
// re-verification. The format is a line-oriented, versioned text format:
//
//   dwv-controller v1
//   <type>            # linear | mlp | poly
//   ...type-specific header...
//   <parameters, whitespace-separated>
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nn/controller.hpp"
#include "nn/poly_controller.hpp"

namespace dwv::nn {

/// Writes any supported controller. Throws std::runtime_error on
/// unsupported controller types or stream failure.
void save_controller(std::ostream& os, const Controller& ctrl);
void save_controller_file(const std::string& path, const Controller& ctrl);

/// Reads a controller previously written by save_controller. Throws
/// std::runtime_error on malformed input.
ControllerPtr load_controller(std::istream& is);
ControllerPtr load_controller_file(const std::string& path);

}  // namespace dwv::nn
