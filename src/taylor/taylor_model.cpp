#include "taylor/taylor_model.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dwv::taylor {

using interval::Interval;
using poly::Poly;

TaylorModel tm_add(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly + b.poly, a.rem + b.rem};
}

TaylorModel tm_sub(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly - b.poly, a.rem - b.rem};
}

TaylorModel tm_scale(const TaylorModel& a, double s) {
  return {a.poly * s, a.rem * Interval(s)};
}

TaylorModel tm_add_const(const TaylorModel& a, double c) {
  TaylorModel r = a;
  r.poly.add_term(poly::Exponents(r.poly.nvars(), 0), c);
  return r;
}

void tm_truncate_inplace(const TmEnv& env, TaylorModel& tm) {
  TmScratch& s = env.scratch();
  if (s.rem_tape.mode == RemTape::kReplay) {
    // The poly (and hence its truncation tail) is bitwise-identical to the
    // recorded pass, so the taped tail range is the exact value the sweep
    // would recompute. The poly itself is left untouched.
    tm.rem += s.rem_tape.next();
    return;
  }
  if (s.poly_only) {
    // The truncation itself is polynomial-channel work; only ranging the
    // swept-away pieces feeds the (dead) remainder, so the sweeps fuse into
    // one discard pass.
    tm.poly.truncate_discard(env.order, env.cutoff);
    return;
  }
  tm.poly.split_by_degree_into(env.order, s.dropped);
  Interval extra(0.0);
  if (!s.dropped.is_zero()) extra += env.poly_range(s.dropped);
  if (env.cutoff > 0.0) {
    tm.poly.prune_small_into(env.cutoff, s.small);
    if (!s.small.is_zero()) extra += env.poly_range(s.small);
  }
  if (s.rem_tape.mode == RemTape::kRecord) s.rem_tape.push(extra);
  tm.rem += extra;
}

TaylorModel tm_truncate(const TmEnv& env, TaylorModel tm) {
  tm_truncate_inplace(env, tm);
  return tm;
}

void tm_mul_into(const TmEnv& env, const TaylorModel& a, const TaylorModel& b,
                 TaylorModel& out) {
  assert(&out != &a && &out != &b);
  TmScratch& s = env.scratch();
  if (s.rem_tape.mode == RemTape::kReplay) {
    const Interval ra = s.rem_tape.next();
    const Interval rb = s.rem_tape.next();
    out.rem = ra * b.rem + rb * a.rem + a.rem * b.rem;
    tm_truncate_inplace(env, out);
    return;
  }
  if (s.poly_only) {
    Poly::mul_into(a.poly, b.poly, out.poly, s.pscratch);
    out.rem = Interval(0.0);
    tm_truncate_inplace(env, out);
    return;
  }
  // (pa + Ia)(pb + Ib) = pa pb + pa Ib + pb Ia + Ia Ib.
  Poly::mul_into(a.poly, b.poly, out.poly, s.pscratch);
  const Interval ra = env.poly_range(a.poly);
  const Interval rb = env.poly_range(b.poly);
  if (s.rem_tape.mode == RemTape::kRecord) {
    s.rem_tape.push(ra);
    s.rem_tape.push(rb);
  }
  out.rem = ra * b.rem + rb * a.rem + a.rem * b.rem;
  tm_truncate_inplace(env, out);
}

TaylorModel tm_mul(const TmEnv& env, const TaylorModel& a,
                   const TaylorModel& b) {
  TaylorModel r;
  tm_mul_into(env, a, b, r);
  return r;
}

void tm_pow_into(const TmEnv& env, const TaylorModel& a, std::uint32_t n,
                 TaylorModel& out) {
  assert(&out != &a);
  TmScratch& s = env.scratch();
  // In replay mode the copies below move only the remainder: the poly
  // channel is never read (tm_mul_into takes its operand ranges from the
  // tape) and output polys are dead.
  const bool rp = s.rem_tape.mode == RemTape::kReplay;
  switch (n) {
    case 0:
      if (rp) out.rem = Interval(0.0);
      else out.assign_constant(env.nvars(), 1.0);
      return;
    case 1:
      if (rp) out.rem = a.rem;
      else out = a;
      return;
    case 2:
      tm_mul_into(env, a, a, out);
      return;
    case 3:
      // Legacy left-to-right chain ((a*a)*a), kept bit-identical.
      tm_mul_into(env, a, a, s.pow_tmp);
      tm_mul_into(env, s.pow_tmp, a, out);
      return;
    default:
      break;
  }
  // Square-and-multiply; tm_mul truncates, so each squaring is truncated.
  if (rp) s.pow_base.rem = a.rem;
  else s.pow_base = a;
  bool has_r = false;
  std::uint32_t k = n;
  while (k > 0) {
    if (k & 1u) {
      if (!has_r) {
        if (rp) out.rem = s.pow_base.rem;
        else out = s.pow_base;
        has_r = true;
      } else {
        tm_mul_into(env, out, s.pow_base, s.pow_tmp);
        std::swap(out, s.pow_tmp);
      }
    }
    k >>= 1u;
    if (k) {
      tm_mul_into(env, s.pow_base, s.pow_base, s.pow_tmp);
      std::swap(s.pow_base, s.pow_tmp);
    }
  }
}

TaylorModel tm_pow(const TmEnv& env, const TaylorModel& a, std::uint32_t n) {
  TaylorModel r;
  tm_pow_into(env, a, n, r);
  return r;
}

interval::Interval tm_range(const TmEnv& env, const TaylorModel& tm) {
  return env.poly_range(tm.poly) + tm.rem;
}

void tm_eval_poly_into(const TmEnv& env, const poly::Poly& f,
                       const TmVec& args, TaylorModel& out) {
  assert(f.nvars() == args.size());
  TmScratch& s = env.scratch();
  // Replay: same op sequence (f's terms and exponents fix the loop shape),
  // remainder arithmetic only; the poly adds are dead in replay because
  // every consumer takes its poly-derived constants from the tape.
  const bool rp = s.rem_tape.mode == RemTape::kReplay;
  if (rp) s.acc.rem = Interval(0.0);
  else s.acc.assign_constant(env.nvars(), 0.0);
  for (const auto& [key, c] : f.terms()) {
    if (rp) s.term.rem = Interval(0.0);
    else s.term.assign_constant(env.nvars(), c);
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::uint32_t e = poly::key_exp(key, f.nvars(), i);
      if (e == 1) {
        // a^1 is a; multiplying by the argument directly skips tm_pow's
        // copy of it (the mul reads the same operand values either way).
        tm_mul_into(env, s.term, args[i], s.mul_out);
        std::swap(s.term, s.mul_out);
      } else if (e > 1) {
        tm_pow_into(env, args[i], e, s.pow_out);
        tm_mul_into(env, s.term, s.pow_out, s.mul_out);
        std::swap(s.term, s.mul_out);
      }
    }
    if (!rp) Poly::add_into(s.acc.poly, s.term.poly, s.add_out.poly);
    s.add_out.rem = s.acc.rem + s.term.rem;
    std::swap(s.acc, s.add_out);
  }
  std::swap(out, s.acc);
  tm_truncate_inplace(env, out);
}

TaylorModel tm_eval_poly(const TmEnv& env, const poly::Poly& f,
                         const TmVec& args) {
  TaylorModel r;
  tm_eval_poly_into(env, f, args, r);
  return r;
}

void tm_integrate_time_into(const TmEnv& env, const TaylorModel& tm,
                            std::size_t time_var, TaylorModel& out) {
  assert(time_var < env.nvars());
  assert(&out != &tm);
  if (env.scratch().rem_tape.mode == RemTape::kReplay) {
    const double rtmax = env.dom[time_var].mag();
    out.rem = interval::hull(Interval(0.0), tm.rem * Interval(rtmax));
    tm_truncate_inplace(env, out);
    return;
  }
  const std::size_t nv = tm.poly.nvars();
  out.poly.reset(nv);
  const std::uint64_t unit = 1ull << poly::key_shift(nv, time_var);
  const std::uint32_t cap = poly::key_max_exp(nv);
  // Adding `unit` to every key preserves order and injectivity, so terms
  // can be appended directly; zero quotients are skipped like add_term.
  for (const auto& [key, c] : tm.poly.terms()) {
    const std::uint32_t e2t = poly::key_exp(key, nv, time_var) + 1;
    if (e2t > cap) {
      throw std::overflow_error(
          "tm_integrate_time: time exponent exceeds the packed-key budget");
    }
    const double q = c / static_cast<double>(e2t);
    if (q == 0.0) continue;
    out.poly.push_term(key + unit, q);
  }
  // integral_0^tau e dtau' for |tau| <= tmax: contained in hull(0, rem*tmax).
  if (env.scratch().poly_only) {
    out.rem = Interval(0.0);
  } else {
    const double tmax = env.dom[time_var].mag();
    out.rem = interval::hull(Interval(0.0), tm.rem * Interval(tmax));
  }
  tm_truncate_inplace(env, out);
}

TaylorModel tm_integrate_time(const TmEnv& env, const TaylorModel& tm,
                              std::size_t time_var) {
  TaylorModel r;
  tm_integrate_time_into(env, tm, time_var, r);
  return r;
}

void tm_subst_var_into(const TmEnv& env, const TaylorModel& tm,
                       std::size_t var, double c, TaylorModel& out) {
  assert(var < env.nvars());
  assert(env.dom[var].contains(c) && "substitution outside domain");
  assert(&out != &tm);
  const std::size_t nv = tm.poly.nvars();
  out.poly.reset(nv);
  poly::PolyScratch& ps = env.scratch().pscratch;
  std::vector<poly::Term>& buf = ps.prod;
  buf.clear();
  const std::uint64_t mask = poly::key_field_mask(nv)
                             << poly::key_shift(nv, var);
  for (const auto& [key, coeff] : tm.poly.terms()) {
    double scale = 1.0;
    const std::uint32_t e = poly::key_exp(key, nv, var);
    for (std::uint32_t k = 0; k < e; ++k) scale *= c;
    buf.push_back({key & ~mask, coeff * scale});
  }
  // Clearing the last variable's (least significant) field keeps keys
  // sorted; clearing any other field needs a stable re-sort so equal keys
  // stay in the original accumulation order.
  if (var + 1 != nv) poly::stable_sort_terms(buf, ps.tmp);
  Poly::coalesce_into(buf, out.poly);
  out.rem = tm.rem;
}

TaylorModel tm_subst_var(const TmEnv& env, const TaylorModel& tm,
                         std::size_t var, double c) {
  TaylorModel r;
  tm_subst_var_into(env, tm, var, c, r);
  return r;
}

void tm_subst_last_into(const TmEnv& env, const TaylorModel& tm, double c,
                        TaylorModel& out) {
  const std::size_t nv = tm.poly.nvars();
  assert(nv >= 1);
  assert(env.dom[nv - 1].contains(c) && "substitution outside domain");
  assert(&out != &tm);
  const std::size_t new_nv = nv - 1;
  out.poly.reset(new_nv);
  poly::PolyScratch& ps = env.scratch().pscratch;
  std::vector<poly::Term>& buf = ps.prod;
  buf.clear();
  const std::uint32_t new_bits = poly::key_bits(new_nv);
  for (const auto& [key, coeff] : tm.poly.terms()) {
    // Same repeated-multiplication power as tm_subst_var_into.
    double scale = 1.0;
    const std::uint32_t e = poly::key_exp(key, nv, nv - 1);
    for (std::uint32_t k = 0; k < e; ++k) scale *= c;
    // Re-pack without the substituted (least significant) field. Dropping a
    // field widens the per-field layout, so no exponent can overflow.
    std::uint64_t k2 = 0;
    for (std::size_t i = 0; i < new_nv; ++i) {
      k2 = (k2 << new_bits) |
           static_cast<std::uint64_t>(poly::key_exp(key, nv, i));
    }
    buf.push_back({k2, coeff * scale});
  }
  Poly::coalesce_into(buf, out.poly);
  out.rem = tm.rem;
}

double tm_eval_mid(const TaylorModel& tm, const linalg::Vec& x) {
  return tm.poly.eval(x);
}

interval::IVec tm_vec_range(const TmEnv& env, const TmVec& v) {
  interval::IVec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = tm_range(env, v[i]);
  return r;
}

}  // namespace dwv::taylor
