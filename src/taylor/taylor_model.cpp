#include "taylor/taylor_model.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dwv::taylor {

using interval::Interval;
using poly::Poly;

TaylorModel tm_add(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly + b.poly, a.rem + b.rem};
}

TaylorModel tm_sub(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly - b.poly, a.rem - b.rem};
}

TaylorModel tm_scale(const TaylorModel& a, double s) {
  return {a.poly * s, a.rem * Interval(s)};
}

TaylorModel tm_add_const(const TaylorModel& a, double c) {
  TaylorModel r = a;
  r.poly.add_term(poly::Exponents(r.poly.nvars(), 0), c);
  return r;
}

void tm_truncate_inplace(const TmEnv& env, TaylorModel& tm) {
  TmScratch& s = env.scratch();
  tm.poly.split_by_degree_into(env.order, s.dropped);
  Interval extra(0.0);
  if (!s.dropped.is_zero()) extra += env.poly_range(s.dropped);
  if (env.cutoff > 0.0) {
    tm.poly.prune_small_into(env.cutoff, s.small);
    if (!s.small.is_zero()) extra += env.poly_range(s.small);
  }
  tm.rem += extra;
}

TaylorModel tm_truncate(const TmEnv& env, TaylorModel tm) {
  tm_truncate_inplace(env, tm);
  return tm;
}

void tm_mul_into(const TmEnv& env, const TaylorModel& a, const TaylorModel& b,
                 TaylorModel& out) {
  assert(&out != &a && &out != &b);
  // (pa + Ia)(pb + Ib) = pa pb + pa Ib + pb Ia + Ia Ib.
  Poly::mul_into(a.poly, b.poly, out.poly, env.scratch().pscratch);
  const Interval ra = env.poly_range(a.poly);
  const Interval rb = env.poly_range(b.poly);
  out.rem = ra * b.rem + rb * a.rem + a.rem * b.rem;
  tm_truncate_inplace(env, out);
}

TaylorModel tm_mul(const TmEnv& env, const TaylorModel& a,
                   const TaylorModel& b) {
  TaylorModel r;
  tm_mul_into(env, a, b, r);
  return r;
}

void tm_pow_into(const TmEnv& env, const TaylorModel& a, std::uint32_t n,
                 TaylorModel& out) {
  assert(&out != &a);
  TmScratch& s = env.scratch();
  switch (n) {
    case 0:
      out.assign_constant(env.nvars(), 1.0);
      return;
    case 1:
      out = a;
      return;
    case 2:
      tm_mul_into(env, a, a, out);
      return;
    case 3:
      // Legacy left-to-right chain ((a*a)*a), kept bit-identical.
      tm_mul_into(env, a, a, s.pow_tmp);
      tm_mul_into(env, s.pow_tmp, a, out);
      return;
    default:
      break;
  }
  // Square-and-multiply; tm_mul truncates, so each squaring is truncated.
  s.pow_base = a;
  bool has_r = false;
  std::uint32_t k = n;
  while (k > 0) {
    if (k & 1u) {
      if (!has_r) {
        out = s.pow_base;
        has_r = true;
      } else {
        tm_mul_into(env, out, s.pow_base, s.pow_tmp);
        std::swap(out, s.pow_tmp);
      }
    }
    k >>= 1u;
    if (k) {
      tm_mul_into(env, s.pow_base, s.pow_base, s.pow_tmp);
      std::swap(s.pow_base, s.pow_tmp);
    }
  }
}

TaylorModel tm_pow(const TmEnv& env, const TaylorModel& a, std::uint32_t n) {
  TaylorModel r;
  tm_pow_into(env, a, n, r);
  return r;
}

interval::Interval tm_range(const TmEnv& env, const TaylorModel& tm) {
  return env.poly_range(tm.poly) + tm.rem;
}

void tm_eval_poly_into(const TmEnv& env, const poly::Poly& f,
                       const TmVec& args, TaylorModel& out) {
  assert(f.nvars() == args.size());
  TmScratch& s = env.scratch();
  s.acc.assign_constant(env.nvars(), 0.0);
  for (const auto& [key, c] : f.terms()) {
    s.term.assign_constant(env.nvars(), c);
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::uint32_t e = poly::key_exp(key, f.nvars(), i);
      if (e > 0) {
        tm_pow_into(env, args[i], e, s.pow_out);
        tm_mul_into(env, s.term, s.pow_out, s.mul_out);
        std::swap(s.term, s.mul_out);
      }
    }
    Poly::add_into(s.acc.poly, s.term.poly, s.add_out.poly);
    s.add_out.rem = s.acc.rem + s.term.rem;
    std::swap(s.acc, s.add_out);
  }
  std::swap(out, s.acc);
  tm_truncate_inplace(env, out);
}

TaylorModel tm_eval_poly(const TmEnv& env, const poly::Poly& f,
                         const TmVec& args) {
  TaylorModel r;
  tm_eval_poly_into(env, f, args, r);
  return r;
}

void tm_integrate_time_into(const TmEnv& env, const TaylorModel& tm,
                            std::size_t time_var, TaylorModel& out) {
  assert(time_var < env.nvars());
  assert(&out != &tm);
  const std::size_t nv = tm.poly.nvars();
  out.poly.reset(nv);
  const std::uint64_t unit = 1ull << poly::key_shift(nv, time_var);
  const std::uint32_t cap = poly::key_max_exp(nv);
  // Adding `unit` to every key preserves order and injectivity, so terms
  // can be appended directly; zero quotients are skipped like add_term.
  for (const auto& [key, c] : tm.poly.terms()) {
    const std::uint32_t e2t = poly::key_exp(key, nv, time_var) + 1;
    if (e2t > cap) {
      throw std::overflow_error(
          "tm_integrate_time: time exponent exceeds the packed-key budget");
    }
    const double q = c / static_cast<double>(e2t);
    if (q == 0.0) continue;
    out.poly.push_term(key + unit, q);
  }
  // integral_0^tau e dtau' for |tau| <= tmax: contained in hull(0, rem*tmax).
  const double tmax = env.dom[time_var].mag();
  out.rem = interval::hull(Interval(0.0), tm.rem * Interval(tmax));
  tm_truncate_inplace(env, out);
}

TaylorModel tm_integrate_time(const TmEnv& env, const TaylorModel& tm,
                              std::size_t time_var) {
  TaylorModel r;
  tm_integrate_time_into(env, tm, time_var, r);
  return r;
}

void tm_subst_var_into(const TmEnv& env, const TaylorModel& tm,
                       std::size_t var, double c, TaylorModel& out) {
  assert(var < env.nvars());
  assert(env.dom[var].contains(c) && "substitution outside domain");
  assert(&out != &tm);
  const std::size_t nv = tm.poly.nvars();
  out.poly.reset(nv);
  poly::PolyScratch& ps = env.scratch().pscratch;
  std::vector<poly::Term>& buf = ps.prod;
  buf.clear();
  const std::uint64_t mask = poly::key_field_mask(nv)
                             << poly::key_shift(nv, var);
  for (const auto& [key, coeff] : tm.poly.terms()) {
    double scale = 1.0;
    const std::uint32_t e = poly::key_exp(key, nv, var);
    for (std::uint32_t k = 0; k < e; ++k) scale *= c;
    buf.push_back({key & ~mask, coeff * scale});
  }
  // Clearing the last variable's (least significant) field keeps keys
  // sorted; clearing any other field needs a stable re-sort so equal keys
  // stay in the original accumulation order.
  if (var + 1 != nv) poly::stable_sort_terms(buf, ps.tmp);
  Poly::coalesce_into(buf, out.poly);
  out.rem = tm.rem;
}

TaylorModel tm_subst_var(const TmEnv& env, const TaylorModel& tm,
                         std::size_t var, double c) {
  TaylorModel r;
  tm_subst_var_into(env, tm, var, c, r);
  return r;
}

double tm_eval_mid(const TaylorModel& tm, const linalg::Vec& x) {
  return tm.poly.eval(x);
}

interval::IVec tm_vec_range(const TmEnv& env, const TmVec& v) {
  interval::IVec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = tm_range(env, v[i]);
  return r;
}

}  // namespace dwv::taylor
