#include "taylor/taylor_model.hpp"

#include <cassert>

namespace dwv::taylor {

using interval::Interval;
using poly::Poly;

TaylorModel tm_add(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly + b.poly, a.rem + b.rem};
}

TaylorModel tm_sub(const TaylorModel& a, const TaylorModel& b) {
  return {a.poly - b.poly, a.rem - b.rem};
}

TaylorModel tm_scale(const TaylorModel& a, double s) {
  return {a.poly * s, a.rem * Interval(s)};
}

TaylorModel tm_add_const(const TaylorModel& a, double c) {
  TaylorModel r = a;
  r.poly.add_term(poly::Exponents(r.poly.nvars(), 0), c);
  return r;
}

TaylorModel tm_truncate(const TmEnv& env, TaylorModel tm) {
  auto [kept, dropped] = tm.poly.split_by_degree(env.order);
  Interval extra(0.0);
  if (!dropped.is_zero()) extra += dropped.eval_range(env.dom);
  if (env.cutoff > 0.0) {
    Poly small = kept.prune_small(env.cutoff);
    if (!small.is_zero()) extra += small.eval_range(env.dom);
  }
  tm.poly = std::move(kept);
  tm.rem += extra;
  return tm;
}

TaylorModel tm_mul(const TmEnv& env, const TaylorModel& a,
                   const TaylorModel& b) {
  // (pa + Ia)(pb + Ib) = pa pb + pa Ib + pb Ia + Ia Ib.
  TaylorModel r;
  r.poly = a.poly * b.poly;
  const Interval ra = a.poly.eval_range(env.dom);
  const Interval rb = b.poly.eval_range(env.dom);
  r.rem = ra * b.rem + rb * a.rem + a.rem * b.rem;
  return tm_truncate(env, std::move(r));
}

TaylorModel tm_pow(const TmEnv& env, const TaylorModel& a, std::uint32_t n) {
  if (n == 0) return TaylorModel::constant(env, 1.0);
  TaylorModel r = a;
  for (std::uint32_t i = 1; i < n; ++i) r = tm_mul(env, r, a);
  return r;
}

interval::Interval tm_range(const TmEnv& env, const TaylorModel& tm) {
  return tm.poly.eval_range(env.dom) + tm.rem;
}

TaylorModel tm_eval_poly(const TmEnv& env, const poly::Poly& f,
                         const TmVec& args) {
  assert(f.nvars() == args.size());
  TaylorModel acc = TaylorModel::constant(env, 0.0);
  for (const auto& [e, c] : f.terms()) {
    TaylorModel term = TaylorModel::constant(env, c);
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (e[i] > 0) term = tm_mul(env, term, tm_pow(env, args[i], e[i]));
    }
    acc = tm_add(acc, term);
  }
  return tm_truncate(env, std::move(acc));
}

TaylorModel tm_integrate_time(const TmEnv& env, const TaylorModel& tm,
                              std::size_t time_var) {
  assert(time_var < env.nvars());
  TaylorModel r;
  r.poly = Poly(tm.poly.nvars());
  for (const auto& [e, c] : tm.poly.terms()) {
    poly::Exponents e2 = e;
    e2[time_var] += 1;
    r.poly.add_term(e2, c / static_cast<double>(e2[time_var]));
  }
  // integral_0^tau e dtau' for |tau| <= tmax: contained in hull(0, rem*tmax).
  const double tmax = env.dom[time_var].mag();
  r.rem = interval::hull(Interval(0.0), tm.rem * Interval(tmax));
  return tm_truncate(env, std::move(r));
}

TaylorModel tm_subst_var(const TmEnv& env, const TaylorModel& tm,
                         std::size_t var, double c) {
  assert(var < env.nvars());
  assert(env.dom[var].contains(c) && "substitution outside domain");
  TaylorModel r;
  r.poly = Poly(tm.poly.nvars());
  for (const auto& [e, coeff] : tm.poly.terms()) {
    double scale = 1.0;
    for (std::uint32_t k = 0; k < e[var]; ++k) scale *= c;
    poly::Exponents e2 = e;
    e2[var] = 0;
    r.poly.add_term(e2, coeff * scale);
  }
  r.rem = tm.rem;
  return r;
}

double tm_eval_mid(const TaylorModel& tm, const linalg::Vec& x) {
  return tm.poly.eval(x);
}

interval::IVec tm_vec_range(const TmEnv& env, const TmVec& v) {
  interval::IVec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = tm_range(env, v[i]);
  return r;
}

}  // namespace dwv::taylor
