// Taylor models: polynomial + interval remainder, the Flow*-style symbolic
// enclosure. A TaylorModel tm over an environment env represents the set of
// functions { x -> tm.poly(x) + e(x) : |e(x)| within tm.rem, x in env.dom }.
//
// The environment (domain box over the symbolic variables, truncation order,
// coefficient cutoff) is shared by all models of a computation and passed
// explicitly, mirroring how Flow* scopes its TM arithmetic settings. It also
// owns the scratch buffers (TmScratch) that the in-place `*_into` kernels
// reuse, so steady-state flowpipe arithmetic performs no heap allocations
// (ownership rules: DESIGN.md section 9).
#pragma once

#include <memory>
#include <vector>

#include "interval/ivec.hpp"
#include "poly/poly.hpp"
#include "poly/range_engine.hpp"

namespace dwv::taylor {

struct TmScratch;

/// Shared settings for a Taylor-model computation.
struct TmEnv {
  /// Domain of the symbolic variables.
  interval::IVec dom;
  /// Maximum kept total degree; higher-degree terms are folded into the
  /// interval remainder (sound truncation).
  std::uint32_t order = 3;
  /// Coefficients with magnitude <= cutoff are swept into the remainder to
  /// keep polynomials short. 0 disables sweeping.
  double cutoff = 1e-12;
  /// Range-bounding mode for every polynomial range query made through
  /// this env (truncation remainders, tm_mul cross terms, tm_range). The
  /// default is bit-identical to the seed; kCenteredForm is tighter but
  /// only containment-comparable (DESIGN.md section 10).
  poly::RangeMode range_mode = poly::RangeMode::kSeedIdentical;

  TmEnv() = default;
  /// Copies settings but NOT the scratch: each copy lazily builds its own
  /// buffers, so envs handed to different worker threads never race.
  TmEnv(const TmEnv& o)
      : dom(o.dom), order(o.order), cutoff(o.cutoff),
        range_mode(o.range_mode) {}
  TmEnv& operator=(const TmEnv& o) {
    dom = o.dom;
    order = o.order;
    cutoff = o.cutoff;
    range_mode = o.range_mode;
    return *this;  // this env keeps its own (possibly borrowed) scratch
  }

  std::size_t nvars() const { return dom.size(); }

  /// Scratch buffers for the in-place TM kernels; created lazily, private
  /// to this env instance (copies do not share them).
  TmScratch& scratch() const;
  /// Points this env's scratch at `owner`'s without taking ownership — used
  /// for envs stored inside a TmScratch (non-owning aliasing pointer avoids
  /// a shared_ptr cycle).
  void borrow_scratch(const TmEnv& owner) const;

  /// Range of `p` over this env's domain through the scratch's shared
  /// range engine (amortized interval power tables, mode = range_mode).
  interval::Interval poly_range(const poly::Poly& p) const;

 private:
  mutable std::shared_ptr<TmScratch> scratch_;
};

/// Polynomial with interval remainder.
struct TaylorModel {
  poly::Poly poly;
  interval::Interval rem;

  TaylorModel() = default;
  TaylorModel(poly::Poly p, interval::Interval r)
      : poly(std::move(p)), rem(r) {}

  static TaylorModel constant(const TmEnv& env, double c) {
    return {poly::Poly::constant(env.nvars(), c), interval::Interval(0.0)};
  }
  static TaylorModel constant(const TmEnv& env, interval::Interval c) {
    return {poly::Poly::constant(env.nvars(), c.mid()),
            c - interval::Interval(c.mid())};
  }
  /// The identity model for symbolic variable i.
  static TaylorModel variable(const TmEnv& env, std::size_t i) {
    return {poly::Poly::variable(env.nvars(), i), interval::Interval(0.0)};
  }

  /// In-place equivalent of constant(env, c): reuses the poly's storage.
  void assign_constant(std::size_t nvars, double c) {
    poly.reset(nvars);
    if (c != 0.0) poly.push_term(0, c);
    rem = interval::Interval(0.0);
  }
};

/// Vector of Taylor models (one per state/output dimension).
using TmVec = std::vector<TaylorModel>;

/// Remainder-replay tape (DESIGN.md section 12). Every interval constant a
/// TM kernel's remainder formula consumes — operand poly ranges in
/// tm_mul_into, truncation-tail ranges in tm_truncate_inplace — depends
/// only on the polynomial channel, never on the input remainders. So when
/// a computation is re-run with bitwise-identical polynomials and only
/// different remainders (the Picard validation loop does exactly this),
/// one recorded pass captures those constants and later passes replay the
/// remainder arithmetic from the tape, skipping polynomial multiplication
/// and range bounding entirely. The replay executes the same interval-op
/// sequence a full evaluation would, with the same operand values, so the
/// results are bit-identical by construction.
///
/// Kernels leave the output polynomial untouched in replay mode; the
/// driver is responsible for materializing any output poly it still needs
/// (reach::tm_integrate_step copies the converged fixpoint polynomial).
struct RemTape {
  enum Mode : int { kOff = 0, kRecord = 1, kReplay = 2 };
  /// Opt-in switch read by reach::tm_integrate_step (set by streaming
  /// drivers such as TmVerifier's lockstep lane pool); the kernels only
  /// look at `mode`.
  bool enabled = false;
  int mode = kOff;
  std::vector<interval::Interval> consts;
  std::size_t pos = 0;  ///< replay cursor

  void start_record() {
    consts.clear();
    mode = kRecord;
  }
  void start_replay() {
    pos = 0;
    mode = kReplay;
  }
  void stop() { mode = kOff; }
  void push(interval::Interval v) { consts.push_back(v); }
  interval::Interval next() { return consts[pos++]; }
};

/// Reusable buffers for allocation-free TM arithmetic. Owned by a TmEnv and
/// handed to every `*_into` kernel through env.scratch(). Buffer ownership
/// is static (each kernel touches a fixed, disjoint subset — see DESIGN.md
/// section 9), so kernels can nest without clobbering each other:
///  - Poly layer: pscratch (multiply/sort), dropped/small (truncation).
///  - tm_mul_into: leaf — uses only the Poly-layer buffers.
///  - tm_pow_into: pow_base, pow_tmp (and the Poly layer via tm_mul_into).
///  - tm_eval_poly_into: acc, term, add_out, mul_out, pow_out (and tm_pow).
///  - tm_subst_var_into: pscratch (as the term stream buffer).
///  - Flowpipe step (tm_integrate_step): the step workspace below.
struct TmScratch {
  // Poly layer.
  poly::PolyScratch pscratch;
  poly::Poly dropped;
  poly::Poly small;
  /// Shared range-bounding engine: every range query routed through a
  /// TmEnv that owns (or borrows) this scratch reuses its per-domain
  /// interval power tables. Private per scratch, so the engine state
  /// follows the same no-sharing-across-threads rules as the buffers.
  poly::RangeEngine range;

  // TM composition buffers.
  TaylorModel acc;
  TaylorModel term;
  TaylorModel add_out;
  TaylorModel mul_out;
  TaylorModel pow_out;
  TaylorModel pow_base;
  TaylorModel pow_tmp;
  TaylorModel integ;
  TaylorModel diff;
  TaylorModel subst;

  /// Remainder-replay tape shared by the TM kernels (record/replay of the
  /// remainder-channel constants; see RemTape).
  RemTape rem_tape;
  /// When set, the TM kernels compute only the polynomial channel: the
  /// remainder arithmetic — and, crucially, the range queries feeding it —
  /// is skipped and output remainders are zeroed. Sound only while the
  /// remainders are dead (the Picard polynomial-fixpoint passes, which
  /// zero them between passes) AND the dynamics' polynomial outputs never
  /// read remainders (TmDynamics::replay_safe); the polynomial bits are
  /// unchanged either way.
  bool poly_only = false;
  /// Streaming lanes: Picard pass index at which the polynomial fixpoint
  /// converged on the previous step. Structural (the tau-degree saturates
  /// at the order), so it is a near-perfect predictor of where remainder
  /// recording has to start; 0 until first observed (record everything).
  std::size_t conv_pred = 0;

  // Flowpipe-step workspace (reach::tm_integrate_step).
  TmVec x0;
  TmVec u;
  TmVec args;
  TmVec g;
  TmVec phi;
  TmVec picard_out;
  TmVec cand;
  TmVec pnext;
  TmVec validated;
  std::vector<interval::Interval> rem_j;
  std::vector<interval::Interval> d_range;
  /// Per-component range of the defect polynomial P(cand)_i - cand_i.poly;
  /// fixed across validation attempts (only the remainder guess changes),
  /// so streaming lanes compute it once per step and reuse it.
  std::vector<interval::Interval> diff_poly_range;

  /// The step's time-extended environment; its scratch borrows from the
  /// owner env's (aliasing pointer — no ownership cycle).
  TmEnv env_time;
  bool env_time_init = false;
};

inline TmScratch& TmEnv::scratch() const {
  if (!scratch_) scratch_ = std::make_shared<TmScratch>();
  return *scratch_;
}

inline void TmEnv::borrow_scratch(const TmEnv& owner) const {
  scratch_ = std::shared_ptr<TmScratch>(std::shared_ptr<TmScratch>(),
                                        &owner.scratch());
}

inline interval::Interval TmEnv::poly_range(const poly::Poly& p) const {
  return scratch().range.eval_range(p, dom, poly::RangeOptions{range_mode});
}

TaylorModel tm_add(const TaylorModel& a, const TaylorModel& b);
TaylorModel tm_sub(const TaylorModel& a, const TaylorModel& b);
TaylorModel tm_scale(const TaylorModel& a, double s);
TaylorModel tm_add_const(const TaylorModel& a, double c);

/// Product with truncation to env.order and remainder bookkeeping.
TaylorModel tm_mul(const TmEnv& env, const TaylorModel& a,
                   const TaylorModel& b);
/// In-place product: out must not alias a or b.
void tm_mul_into(const TmEnv& env, const TaylorModel& a, const TaylorModel& b,
                 TaylorModel& out);

/// Integer power. n <= 3 multiplies left to right exactly like the legacy
/// repeated-multiplication loop (bit-identical); n >= 4 switches to
/// square-and-multiply, truncating after each squaring (fewer tm_mul calls;
/// results may differ from the legacy loop at those orders).
TaylorModel tm_pow(const TmEnv& env, const TaylorModel& a, std::uint32_t n);
/// In-place power: out must not alias a.
void tm_pow_into(const TmEnv& env, const TaylorModel& a, std::uint32_t n,
                 TaylorModel& out);

/// Folds terms above env.order (and below env.cutoff) into the remainder.
TaylorModel tm_truncate(const TmEnv& env, TaylorModel tm);
/// In-place truncation (single linear pass per sweep).
void tm_truncate_inplace(const TmEnv& env, TaylorModel& tm);

/// Sound enclosure of the model's range over env.dom.
interval::Interval tm_range(const TmEnv& env, const TaylorModel& tm);

/// Evaluates a polynomial f(y_0..y_{k-1}) with Taylor-model arguments;
/// the composition engine used to push dynamics and controllers through TMs.
TaylorModel tm_eval_poly(const TmEnv& env, const poly::Poly& f,
                         const TmVec& args);
/// In-place evaluation: out must not alias any element of args.
void tm_eval_poly_into(const TmEnv& env, const poly::Poly& f,
                       const TmVec& args, TaylorModel& out);

/// Integrates with respect to variable `time_var` from 0 to that variable
/// (antiderivative with zero constant). The remainder is scaled by the
/// maximal |time| in the domain. Used by the Picard operator.
TaylorModel tm_integrate_time(const TmEnv& env, const TaylorModel& tm,
                              std::size_t time_var);
/// In-place integration: out must not alias tm.
void tm_integrate_time_into(const TmEnv& env, const TaylorModel& tm,
                            std::size_t time_var, TaylorModel& out);

/// Partially evaluates variable `var` at scalar value `c` (e.g. advancing a
/// flowpipe segment to the end of its step).
TaylorModel tm_subst_var(const TmEnv& env, const TaylorModel& tm,
                         std::size_t var, double c);
/// In-place substitution: out must not alias tm.
void tm_subst_var_into(const TmEnv& env, const TaylorModel& tm,
                       std::size_t var, double c, TaylorModel& out);

/// Fused tm_subst_var(last var, c) + Poly::drop_last_var_into: substitutes
/// the last variable at `c` and re-encodes the result over nvars-1
/// variables in one term walk. Bit-identical to the two-step sequence
/// (clearing the least-significant field keeps the term stream sorted, and
/// the re-pack to the wider per-field layout is order- and
/// equality-preserving, so the coalesce sees the same adjacency). out must
/// not alias tm; out's poly gets tm.poly.nvars() - 1 variables.
void tm_subst_last_into(const TmEnv& env, const TaylorModel& tm, double c,
                        TaylorModel& out);

/// Point evaluation of the polynomial part (center of the enclosure).
double tm_eval_mid(const TaylorModel& tm, const linalg::Vec& x);

/// Box hull of a TM vector's range.
interval::IVec tm_vec_range(const TmEnv& env, const TmVec& v);

}  // namespace dwv::taylor
