// Taylor models: polynomial + interval remainder, the Flow*-style symbolic
// enclosure. A TaylorModel tm over an environment env represents the set of
// functions { x -> tm.poly(x) + e(x) : |e(x)| within tm.rem, x in env.dom }.
//
// The environment (domain box over the symbolic variables, truncation order,
// coefficient cutoff) is shared by all models of a computation and passed
// explicitly, mirroring how Flow* scopes its TM arithmetic settings.
#pragma once

#include <vector>

#include "interval/ivec.hpp"
#include "poly/poly.hpp"

namespace dwv::taylor {

/// Shared settings for a Taylor-model computation.
struct TmEnv {
  /// Domain of the symbolic variables.
  interval::IVec dom;
  /// Maximum kept total degree; higher-degree terms are folded into the
  /// interval remainder (sound truncation).
  std::uint32_t order = 3;
  /// Coefficients with magnitude <= cutoff are swept into the remainder to
  /// keep polynomials short. 0 disables sweeping.
  double cutoff = 1e-12;

  std::size_t nvars() const { return dom.size(); }
};

/// Polynomial with interval remainder.
struct TaylorModel {
  poly::Poly poly;
  interval::Interval rem;

  TaylorModel() = default;
  TaylorModel(poly::Poly p, interval::Interval r)
      : poly(std::move(p)), rem(r) {}

  static TaylorModel constant(const TmEnv& env, double c) {
    return {poly::Poly::constant(env.nvars(), c), interval::Interval(0.0)};
  }
  static TaylorModel constant(const TmEnv& env, interval::Interval c) {
    return {poly::Poly::constant(env.nvars(), c.mid()),
            c - interval::Interval(c.mid())};
  }
  /// The identity model for symbolic variable i.
  static TaylorModel variable(const TmEnv& env, std::size_t i) {
    return {poly::Poly::variable(env.nvars(), i), interval::Interval(0.0)};
  }
};

/// Vector of Taylor models (one per state/output dimension).
using TmVec = std::vector<TaylorModel>;

TaylorModel tm_add(const TaylorModel& a, const TaylorModel& b);
TaylorModel tm_sub(const TaylorModel& a, const TaylorModel& b);
TaylorModel tm_scale(const TaylorModel& a, double s);
TaylorModel tm_add_const(const TaylorModel& a, double c);

/// Product with truncation to env.order and remainder bookkeeping.
TaylorModel tm_mul(const TmEnv& env, const TaylorModel& a,
                   const TaylorModel& b);

/// Integer power by repeated multiplication.
TaylorModel tm_pow(const TmEnv& env, const TaylorModel& a, std::uint32_t n);

/// Folds terms above env.order (and below env.cutoff) into the remainder.
TaylorModel tm_truncate(const TmEnv& env, TaylorModel tm);

/// Sound enclosure of the model's range over env.dom.
interval::Interval tm_range(const TmEnv& env, const TaylorModel& tm);

/// Evaluates a polynomial f(y_0..y_{k-1}) with Taylor-model arguments;
/// the composition engine used to push dynamics and controllers through TMs.
TaylorModel tm_eval_poly(const TmEnv& env, const poly::Poly& f,
                         const TmVec& args);

/// Integrates with respect to variable `time_var` from 0 to that variable
/// (antiderivative with zero constant). The remainder is scaled by the
/// maximal |time| in the domain. Used by the Picard operator.
TaylorModel tm_integrate_time(const TmEnv& env, const TaylorModel& tm,
                              std::size_t time_var);

/// Partially evaluates variable `var` at scalar value `c` (e.g. advancing a
/// flowpipe segment to the end of its step).
TaylorModel tm_subst_var(const TmEnv& env, const TaylorModel& tm,
                         std::size_t var, double c);

/// Point evaluation of the polynomial part (center of the enclosure).
double tm_eval_mid(const TaylorModel& tm, const linalg::Vec& x);

/// Box hull of a TM vector's range.
interval::IVec tm_vec_range(const TmEnv& env, const TmVec& v);

}  // namespace dwv::taylor
