#include "taylor/dual_tm.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dwv::taylor {

using interval::DualInterval;
using interval::Interval;
using poly::DualPoly;
using poly::Poly;

DualInterval dual_poly_range(const DualTmEnv& env, const DualPoly& p) {
  return poly::dual_range(p, env.dom, env.scratch().dps);
}

DualTm dual_tm_add(const DualTm& a, const DualTm& b) {
  assert(a.p.dirs() == b.p.dirs());
  DualTm r;
  r.p.tan.resize(a.p.dirs());
  Poly::add_into(a.p.val, b.p.val, r.p.val);
  for (std::size_t k = 0; k < a.p.dirs(); ++k) {
    Poly::add_into(a.p.tan[k], b.p.tan[k], r.p.tan[k]);
  }
  r.rem = dual_add(a.rem, b.rem);
  return r;
}

DualTm dual_tm_sub(const DualTm& a, const DualTm& b) {
  assert(a.p.dirs() == b.p.dirs());
  DualTm r;
  r.p.tan.resize(a.p.dirs());
  Poly::sub_into(a.p.val, b.p.val, r.p.val);
  for (std::size_t k = 0; k < a.p.dirs(); ++k) {
    Poly::sub_into(a.p.tan[k], b.p.tan[k], r.p.tan[k]);
  }
  r.rem = dual_sub(a.rem, b.rem);
  return r;
}

DualTm dual_tm_scale_dir(const DualTm& a, double s, std::size_t dir) {
  const std::size_t nd = a.p.dirs();
  DualTm r;
  r.p.val = a.p.val * s;
  r.p.tan.resize(nd);
  for (std::size_t k = 0; k < nd; ++k) {
    r.p.tan[k] = a.p.tan[k] * s;
    if (k == dir) {
      // d(s p) = s dp + p (the weight's own derivative is 1 along dir).
      Poly tmp;
      Poly::add_into(r.p.tan[k], a.p.val, tmp);
      r.p.tan[k] = std::move(tmp);
    }
  }
  DualInterval si = DualInterval::constant(Interval(s), nd);
  if (dir != kNoDir) {
    si.dlo[dir] = 1.0;
    si.dhi[dir] = 1.0;
  }
  r.rem = dual_mul(a.rem, si);
  return r;
}

DualTm dual_tm_scale(const DualTm& a, double s) {
  return dual_tm_scale_dir(a, s, kNoDir);
}

void dual_tm_truncate_inplace(const DualTmEnv& env, DualTm& tm) {
  DualTmScratch& s = env.scratch();
  const std::size_t nd = env.dirs;

  // Degree split is structural (theta-independent), so both channels split.
  tm.p.val.split_by_degree_into(env.order, s.dropped.val);
  s.dropped.tan.resize(nd);
  bool tan_dropped = false;
  for (std::size_t k = 0; k < nd; ++k) {
    tm.p.tan[k].split_by_degree_into(env.order, s.dropped.tan[k]);
    tan_dropped = tan_dropped || !s.dropped.tan[k].is_zero();
  }

  DualInterval extra = DualInterval::constant(Interval(0.0), nd);
  const bool val_dropped = !s.dropped.val.is_zero();
  if (val_dropped || tan_dropped) {
    const DualInterval dr = poly::dual_range(s.dropped, env.dom, s.dps);
    if (val_dropped) {
      extra = dual_add(extra, dr);
    } else {
      // Scalar code skips the range query entirely (dropped poly empty);
      // the value channel must keep skipping, tangents still accrue.
      dual_add_tangents(extra, dr);
    }
  }

  if (env.cutoff > 0.0) {
    // Value-channel sweep exactly as scalar. Tangent terms of the pruned
    // keys stay in the tangent polynomials: a +-h perturbation puts the
    // coefficient at ~h*dc, far above the cutoff, so perturbed runs KEEP
    // the term — the kept-path derivative is what central differences see.
    tm.p.val.prune_small_into(env.cutoff, s.small);
    if (!s.small.is_zero()) {
      extra = dual_add(
          extra, DualInterval::constant(s.small.eval_range(env.dom), nd));
    }
  }
  tm.rem = dual_add(tm.rem, extra);
}

void dual_tm_mul_into(const DualTmEnv& env, const DualTm& a, const DualTm& b,
                      DualTm& out) {
  assert(&out != &a && &out != &b);
  DualTmScratch& s = env.scratch();
  poly::dual_mul_into(a.p, b.p, out.p, s.dps);
  const DualInterval ra = dual_poly_range(env, a.p);
  const DualInterval rb = dual_poly_range(env, b.p);
  // ra * b.rem + rb * a.rem + a.rem * b.rem, left-associated as scalar.
  out.rem = dual_add(dual_add(dual_mul(ra, b.rem), dual_mul(rb, a.rem)),
                     dual_mul(a.rem, b.rem));
  dual_tm_truncate_inplace(env, out);
}

void dual_tm_pow_into(const DualTmEnv& env, const DualTm& a, std::uint32_t n,
                      DualTm& out) {
  assert(&out != &a);
  DualTmScratch& s = env.scratch();
  switch (n) {
    case 0:
      out.assign_constant(env.nvars(), env.dirs, 1.0, nullptr);
      return;
    case 1:
      out = a;
      return;
    case 2:
      dual_tm_mul_into(env, a, a, out);
      return;
    case 3:
      dual_tm_mul_into(env, a, a, s.pow_tmp);
      dual_tm_mul_into(env, s.pow_tmp, a, out);
      return;
    default:
      break;
  }
  s.pow_base = a;
  bool has_r = false;
  std::uint32_t k = n;
  while (k > 0) {
    if (k & 1u) {
      if (!has_r) {
        out = s.pow_base;
        has_r = true;
      } else {
        dual_tm_mul_into(env, out, s.pow_base, s.pow_tmp);
        std::swap(out, s.pow_tmp);
      }
    }
    k >>= 1u;
    if (k) {
      dual_tm_mul_into(env, s.pow_base, s.pow_base, s.pow_tmp);
      std::swap(s.pow_base, s.pow_tmp);
    }
  }
}

DualInterval dual_tm_range(const DualTmEnv& env, const DualTm& tm) {
  return dual_add(dual_poly_range(env, tm.p), tm.rem);
}

void dual_tm_eval_poly_into(const DualTmEnv& env, const DualPoly& f,
                            const DualTmVec& args, DualTm& out) {
  assert(f.val.nvars() == args.size());
  DualTmScratch& s = env.scratch();
  const std::size_t nd = env.dirs;
  const std::size_t fn = f.val.nvars();

  s.acc.assign_constant(env.nvars(), nd, 0.0, nullptr);
  double dc[DualInterval::kMaxDirs];
  for (const auto& [key, c] : f.val.terms()) {
    for (std::size_t k = 0; k < nd; ++k) {
      dc[k] = poly::coeff_of_key(f.tan[k], key);
    }
    s.term.assign_constant(env.nvars(), nd, c, dc);
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::uint32_t e = poly::key_exp(key, fn, i);
      if (e == 1) {
        dual_tm_mul_into(env, s.term, args[i], s.mul_out);
        std::swap(s.term, s.mul_out);
      } else if (e > 1) {
        dual_tm_pow_into(env, args[i], e, s.pow_out);
        dual_tm_mul_into(env, s.term, s.pow_out, s.mul_out);
        std::swap(s.term, s.mul_out);
      }
    }
    Poly::add_into(s.acc.p.val, s.term.p.val, s.add_out.p.val);
    s.add_out.p.tan.resize(nd);
    for (std::size_t k = 0; k < nd; ++k) {
      Poly::add_into(s.acc.p.tan[k], s.term.p.tan[k], s.add_out.p.tan[k]);
    }
    s.add_out.rem = dual_add(s.acc.rem, s.term.rem);
    std::swap(s.acc, s.add_out);
  }

  // Keys present only in f's tangent channel (coefficient exactly 0 at the
  // current parameters, derivative nonzero — e.g. a controller gain at 0).
  // The value channel never sees them; the tangents pick up
  // dc * (monomial product over the argument VALUE channels), evaluated at
  // coefficient 1 through the scalar kernels in the private side env. The
  // remainder-channel sensitivity is the central-difference limit
  // dc * mid2(prod.rem) on both endpoints (dual_interval.hpp).
  poly::tangent_only_keys(f, s.fkeys);
  if (!s.fkeys.empty()) {
    TmEnv& se = s.side_env;
    se.dom = env.dom;
    se.order = env.order;
    se.cutoff = env.cutoff;
    se.range_mode = poly::RangeMode::kSeedIdentical;
    s.side_args.resize(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      s.side_args[i].poly = args[i].p.val;
      s.side_args[i].rem = args[i].rem.v;
    }
    for (std::uint64_t key : s.fkeys) {
      s.side_term.assign_constant(env.nvars(), 1.0);
      for (std::size_t i = 0; i < args.size(); ++i) {
        const std::uint32_t e = poly::key_exp(key, fn, i);
        if (e == 1) {
          tm_mul_into(se, s.side_term, s.side_args[i], s.side_mul);
          std::swap(s.side_term, s.side_mul);
        } else if (e > 1) {
          tm_pow_into(se, s.side_args[i], e, s.side_pow);
          tm_mul_into(se, s.side_term, s.side_pow, s.side_mul);
          std::swap(s.side_term, s.side_mul);
        }
      }
      const double m2 = interval::mid2(s.side_term.rem);
      for (std::size_t k = 0; k < nd; ++k) {
        const double d = poly::coeff_of_key(f.tan[k], key);
        if (d == 0.0) continue;
        s.dps.t1 = s.side_term.poly;
        s.dps.t1 *= d;
        Poly::add_into(s.acc.p.tan[k], s.dps.t1, s.dps.t2);
        std::swap(s.acc.p.tan[k], s.dps.t2);
        s.acc.rem.dlo[k] += d * m2;
        s.acc.rem.dhi[k] += d * m2;
      }
    }
  }

  std::swap(out, s.acc);
  dual_tm_truncate_inplace(env, out);
}

void dual_tm_integrate_time_into(const DualTmEnv& env, const DualTm& tm,
                                 std::size_t time_var, DualTm& out) {
  assert(time_var < env.nvars());
  assert(&out != &tm);
  const std::size_t nd = env.dirs;
  const std::size_t nv = tm.p.val.nvars();
  out.p.reset(nv, nd);
  const std::uint64_t unit = 1ull << poly::key_shift(nv, time_var);
  const std::uint32_t cap = poly::key_max_exp(nv);
  const auto integrate_channel = [&](const Poly& in, Poly& dst) {
    for (const auto& [key, c] : in.terms()) {
      const std::uint32_t e2t = poly::key_exp(key, nv, time_var) + 1;
      if (e2t > cap) {
        throw std::overflow_error(
            "tm_integrate_time: time exponent exceeds the packed-key budget");
      }
      const double q = c / static_cast<double>(e2t);
      if (q == 0.0) continue;
      dst.push_term(key + unit, q);
    }
  };
  integrate_channel(tm.p.val, out.p.val);
  for (std::size_t k = 0; k < nd; ++k) {
    integrate_channel(tm.p.tan[k], out.p.tan[k]);
  }
  const double tmax = env.dom[time_var].mag();
  out.rem = dual_hull(DualInterval::constant(Interval(0.0), nd),
                      dual_mul_const(tm.rem, Interval(tmax)));
  dual_tm_truncate_inplace(env, out);
}

void dual_tm_subst_last_into(const DualTmEnv& env, const DualTm& tm, double c,
                             DualTm& out) {
  const std::size_t nd = env.dirs;
  const std::size_t nv = tm.p.val.nvars();
  assert(nv >= 1);
  assert(&out != &tm);
  const std::size_t new_nv = nv - 1;
  out.p.reset(new_nv, nd);
  poly::PolyScratch& ps = env.scratch().dps.ps;
  std::vector<poly::Term>& buf = ps.prod;
  const std::uint32_t new_bits = poly::key_bits(new_nv);
  const auto subst_channel = [&](const Poly& in, Poly& dst) {
    buf.clear();
    for (const auto& [key, coeff] : in.terms()) {
      double scale = 1.0;
      const std::uint32_t e = poly::key_exp(key, nv, nv - 1);
      for (std::uint32_t k = 0; k < e; ++k) scale *= c;
      std::uint64_t k2 = 0;
      for (std::size_t i = 0; i < new_nv; ++i) {
        k2 = (k2 << new_bits) |
             static_cast<std::uint64_t>(poly::key_exp(key, nv, i));
      }
      buf.push_back({k2, coeff * scale});
    }
    Poly::coalesce_into(buf, dst);
  };
  subst_channel(tm.p.val, out.p.val);
  for (std::size_t k = 0; k < nd; ++k) {
    subst_channel(tm.p.tan[k], out.p.tan[k]);
  }
  out.rem = tm.rem;
}

DualTm dual_tm_affine(const DualTmEnv& env, const DualTmVec& in,
                      const linalg::Vec& w,
                      const std::vector<std::size_t>& wdir, double b) {
  assert(in.size() == w.size() && wdir.size() == w.size());
  const std::size_t nd = env.dirs;
  DualTm acc;
  acc.assign_constant(env.nvars(), nd, b, nullptr);
  for (std::size_t j = 0; j < in.size(); ++j) {
    if (w[j] != 0.0) {
      acc = dual_tm_add(acc, dual_tm_scale_dir(in[j], w[j], wdir[j]));
    } else if (wdir[j] != kNoDir) {
      // Scalar code skips w_j == 0; the value channel must too. The
      // contribution's derivative along wdir[j] is in_j itself (w d(in_j)
      // vanishes at w = 0): value-channel poly into the tangent poly,
      // mid2(in_j.rem) onto both remainder endpoints.
      const std::size_t k = wdir[j];
      Poly tmp;
      Poly::add_into(acc.p.tan[k], in[j].p.val, tmp);
      acc.p.tan[k] = std::move(tmp);
      const double m2 = interval::mid2(in[j].rem.v);
      acc.rem.dlo[k] += m2;
      acc.rem.dhi[k] += m2;
    }
  }
  dual_tm_truncate_inplace(env, acc);
  return acc;
}

std::vector<DualInterval> dual_tm_vec_range(const DualTmEnv& env,
                                            const DualTmVec& v) {
  std::vector<DualInterval> r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = dual_tm_range(env, v[i]);
  return r;
}

}  // namespace dwv::taylor
