// Sound Taylor-model abstractions of neural-network activation functions
// (the POLAR-style layer propagation primitives):
//  * smooth activations (tanh, sigmoid) via a Taylor expansion around the
//    input range's midpoint with a Lagrange interval remainder,
//  * ReLU via its optimal linear relaxation with a symmetric remainder.
#pragma once

#include "taylor/taylor_model.hpp"

namespace dwv::taylor {

/// Taylor order used for smooth activations (1 or 2).
enum class ActOrder { kLinear = 1, kQuadratic = 2 };

TaylorModel tm_tanh(const TmEnv& env, const TaylorModel& in,
                    ActOrder order = ActOrder::kQuadratic);
TaylorModel tm_sigmoid(const TmEnv& env, const TaylorModel& in,
                       ActOrder order = ActOrder::kQuadratic);
TaylorModel tm_relu(const TmEnv& env, const TaylorModel& in);

/// Sound TM enclosures of sine/cosine (for expression-tree dynamics):
/// quadratic Taylor expansion with a cubic Lagrange remainder, falling
/// back to the interval-constant enclosure when the input is wide.
TaylorModel tm_sin(const TmEnv& env, const TaylorModel& in);
TaylorModel tm_cos(const TmEnv& env, const TaylorModel& in);

/// Exponential: quadratic Taylor with Lagrange remainder (monotone bound).
TaylorModel tm_exp(const TmEnv& env, const TaylorModel& in);

/// Affine combination sum_j w[j] * in[j] + b (one neuron's pre-activation).
TaylorModel tm_affine(const TmEnv& env, const TmVec& in,
                      const linalg::Vec& w, double b);

}  // namespace dwv::taylor
