#include "taylor/activations.hpp"

#include <cmath>

namespace dwv::taylor {

using interval::Interval;

namespace {

struct SmoothAbstraction {
  double f0;        // f(c)
  double f1;        // f'(c)
  double f2;        // f''(c)
  Interval rem_hi;  // Lagrange remainder bound (already divided by k!)
};

// Shared expansion driver: result = f0 + f1*(t-c) [+ f2/2 (t-c)^2] + rem.
TaylorModel expand(const TmEnv& env, const TaylorModel& in, double c,
                   const SmoothAbstraction& s, ActOrder order) {
  TaylorModel dt = tm_add_const(in, -c);
  TaylorModel r = tm_scale(dt, s.f1);
  r = tm_add_const(r, s.f0);
  if (order == ActOrder::kQuadratic) {
    r = tm_add(r, tm_scale(tm_mul(env, dt, dt), 0.5 * s.f2));
  }
  r.rem += s.rem_hi;
  return tm_truncate(env, r);
}

// Secant (chord) relaxation for a bounded sigmoidal function: the line
// through the endpoints plus an interval covering the deviation. Unlike
// the Taylor expansion its remainder is globally bounded by the function's
// range, so it cannot blow up on wide inputs; used whenever it is tighter.
template <class F, class DInv>
TaylorModel secant_sigmoidal(const TmEnv& env, const TaylorModel& in,
                             const Interval& range, F f, DInv extrema_at) {
  const double lo = range.lo();
  const double hi = range.hi();
  const double flo = f(lo);
  const double fhi = f(hi);
  if (hi - lo < 1e-12) {
    TaylorModel r = TaylorModel::constant(env, 0.5 * (flo + fhi));
    r.rem += Interval::symmetric(std::abs(fhi - flo));
    return r;
  }
  const double a = (fhi - flo) / (hi - lo);
  const double b = flo - a * lo;
  // Deviation extrema: endpoints (0) and interior points where f' = a.
  double dmin = 0.0;
  double dmax = 0.0;
  for (double xs : extrema_at(a)) {
    if (xs > lo && xs < hi) {
      const double d = f(xs) - (a * xs + b);
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
  }
  TaylorModel r = tm_scale(in, a);
  r = tm_add_const(r, b + 0.5 * (dmin + dmax));
  r.rem += Interval::symmetric(0.5 * (dmax - dmin) + 1e-12);
  return tm_truncate(env, r);
}

}  // namespace

TaylorModel tm_tanh(const TmEnv& env, const TaylorModel& in, ActOrder order) {
  const Interval range = tm_range(env, in);
  const double c = range.mid();
  const double y = std::tanh(c);

  SmoothAbstraction s;
  s.f0 = y;
  s.f1 = 1.0 - y * y;
  s.f2 = -2.0 * y * (1.0 - y * y);

  const Interval yr = interval::tanh(range);
  const Interval one(1.0);
  const Interval dev = range - Interval(c);
  if (order == ActOrder::kLinear) {
    // R = f''(xi)/2 * (t-c)^2 with f'' = -2 y (1 - y^2).
    const Interval f2r = Interval(-2.0) * yr * (one - interval::sqr(yr));
    s.rem_hi = f2r * interval::sqr(dev) * Interval(0.5);
  } else {
    // R = f'''(xi)/6 * (t-c)^3 with f''' = (1 - y^2)(6 y^2 - 2).
    const Interval f3r = (one - interval::sqr(yr)) *
                         (Interval(6.0) * interval::sqr(yr) - Interval(2.0));
    s.rem_hi = f3r * interval::pow_n(dev, 3) / 6.0;
  }
  // The remainder must contain 0 (the expansion is exact at t = c).
  s.rem_hi = interval::hull(Interval(0.0), s.rem_hi);
  TaylorModel taylor_tm = expand(env, in, c, s, order);

  // The Taylor remainder grows like dev^3 and is useless on wide inputs;
  // the secant relaxation is bounded by the function range. Keep whichever
  // is tighter.
  TaylorModel secant_tm = secant_sigmoidal(
      env, in, range, [](double x) { return std::tanh(x); },
      [](double a) {
        std::vector<double> xs;
        if (a > 0.0 && a < 1.0) {
          const double t = std::sqrt(1.0 - a);
          const double x = 0.5 * std::log((1.0 + t) / (1.0 - t));  // atanh
          xs.push_back(x);
          xs.push_back(-x);
        }
        return xs;
      });
  return taylor_tm.rem.width() <= secant_tm.rem.width() ? taylor_tm
                                                        : secant_tm;
}

TaylorModel tm_sigmoid(const TmEnv& env, const TaylorModel& in,
                       ActOrder order) {
  const Interval range = tm_range(env, in);
  const double c = range.mid();
  const double y = 1.0 / (1.0 + std::exp(-c));

  SmoothAbstraction s;
  s.f0 = y;
  s.f1 = y * (1.0 - y);
  s.f2 = y * (1.0 - y) * (1.0 - 2.0 * y);

  const Interval yr = interval::sigmoid(range);
  const Interval one(1.0);
  const Interval dev = range - Interval(c);
  if (order == ActOrder::kLinear) {
    const Interval f2r = yr * (one - yr) * (one - Interval(2.0) * yr);
    s.rem_hi = f2r * interval::sqr(dev) * Interval(0.5);
  } else {
    // f''' = y(1-y)(1 - 6y + 6y^2).
    const Interval f3r =
        yr * (one - yr) *
        (one - Interval(6.0) * yr + Interval(6.0) * interval::sqr(yr));
    s.rem_hi = f3r * interval::pow_n(dev, 3) / 6.0;
  }
  s.rem_hi = interval::hull(Interval(0.0), s.rem_hi);
  TaylorModel taylor_tm = expand(env, in, c, s, order);

  TaylorModel secant_tm = secant_sigmoidal(
      env, in, range, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double a) {
        std::vector<double> xs;
        if (a > 0.0 && a < 0.25) {
          // s' = s(1-s) = a  =>  s = (1 +- sqrt(1-4a))/2.
          const double t = std::sqrt(1.0 - 4.0 * a);
          const double s1 = 0.5 * (1.0 + t);
          const double s2 = 0.5 * (1.0 - t);
          xs.push_back(std::log(s1 / (1.0 - s1)));
          xs.push_back(std::log(s2 / (1.0 - s2)));
        }
        return xs;
      });
  return taylor_tm.rem.width() <= secant_tm.rem.width() ? taylor_tm
                                                        : secant_tm;
}

TaylorModel tm_relu(const TmEnv& env, const TaylorModel& in) {
  const Interval range = tm_range(env, in);
  const double lo = range.lo();
  const double hi = range.hi();
  if (lo >= 0.0) return in;  // Identity region.
  if (hi <= 0.0) return TaylorModel::constant(env, 0.0);
  // Mixed region: relu(t) in lambda*t + [0, mu] with the optimal (tightest)
  // single-slope relaxation lambda = hi/(hi-lo), mu = -hi*lo/(hi-lo).
  const double lambda = hi / (hi - lo);
  const double mu = -hi * lo / (hi - lo);
  TaylorModel r = tm_scale(in, lambda);
  r = tm_add_const(r, 0.5 * mu);
  r.rem += Interval(-0.5 * mu, 0.5 * mu);
  return tm_truncate(env, r);
}

namespace {

// Quadratic Taylor expansion with a cubic Lagrange remainder for a smooth
// f, competing against the interval-constant enclosure.
TaylorModel smooth_or_interval(const TmEnv& env, const TaylorModel& in,
                               double f0, double f1, double f2,
                               const Interval& f3_range,
                               const Interval& out_range, double c) {
  const Interval range = tm_range(env, in);
  const Interval dev = range - Interval(c);
  TaylorModel dt = tm_add_const(in, -c);
  TaylorModel taylor_tm = tm_scale(dt, f1);
  taylor_tm = tm_add_const(taylor_tm, f0);
  taylor_tm = tm_add(taylor_tm, tm_scale(tm_mul(env, dt, dt), 0.5 * f2));
  taylor_tm.rem += interval::hull(Interval(0.0),
                                  f3_range * interval::pow_n(dev, 3) / 6.0);
  taylor_tm = tm_truncate(env, taylor_tm);

  TaylorModel const_tm = TaylorModel::constant(env, out_range.mid());
  const_tm.rem += Interval::symmetric(out_range.rad());

  return taylor_tm.rem.width() <= const_tm.rem.width() ? taylor_tm
                                                       : const_tm;
}

}  // namespace

TaylorModel tm_sin(const TmEnv& env, const TaylorModel& in) {
  const Interval range = tm_range(env, in);
  const double c = range.mid();
  // |sin'''| <= 1 everywhere.
  return smooth_or_interval(env, in, std::sin(c), std::cos(c), -std::sin(c),
                            Interval(-1.0, 1.0), interval::sin(range), c);
}

TaylorModel tm_cos(const TmEnv& env, const TaylorModel& in) {
  const Interval range = tm_range(env, in);
  const double c = range.mid();
  return smooth_or_interval(env, in, std::cos(c), -std::sin(c),
                            -std::cos(c), Interval(-1.0, 1.0),
                            interval::cos(range), c);
}

TaylorModel tm_exp(const TmEnv& env, const TaylorModel& in) {
  const Interval range = tm_range(env, in);
  const double c = range.mid();
  const double e = std::exp(c);
  // exp''' over the range is exp(range) itself (monotone).
  return smooth_or_interval(env, in, e, e, e, interval::exp(range),
                            interval::exp(range), c);
}

TaylorModel tm_affine(const TmEnv& env, const TmVec& in, const linalg::Vec& w,
                      double b) {
  assert(in.size() == w.size());
  TaylorModel acc = TaylorModel::constant(env, b);
  for (std::size_t j = 0; j < in.size(); ++j) {
    if (w[j] != 0.0) acc = tm_add(acc, tm_scale(in[j], w[j]));
  }
  return tm_truncate(env, acc);
}

}  // namespace dwv::taylor
