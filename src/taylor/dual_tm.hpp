// Forward-mode dual-number Taylor models: DualPoly + DualInterval remainder.
//
// Each kernel here mirrors its scalar counterpart in taylor_model.cpp
// OPERATION FOR OPERATION on the value channel — same Poly kernels, same
// interval op sequence, same skip conditions — so a dual pipeline's value
// bits are identical to the scalar pipeline's (tested bitwise in
// tests/test_grad.cpp). Tangents ride along:
//  - polynomial channel: exact product-rule arithmetic with the same
//    mul_into/add_into kernels (d(ab) = (da)b + a(db));
//  - remainder channel: DualInterval ops with the central-difference tie
//    convention of dual_interval.hpp;
//  - zero-coefficient skips the scalar code makes (assign_constant drops
//    c == 0, tm_affine skips w_j == 0, sweep cutoffs): the value channel
//    keeps skipping, tangent contributions are accumulated separately via
//    the tangent-only paths (see dual_poly.hpp).
//
// The value channel's range queries replicate Poly::eval_range directly
// (dual_range), which matches TmEnv::poly_range bit for bit in the default
// kSeedIdentical mode — the only mode the gradient engine supports. The
// dual kernels are therefore stateless w.r.t. the scalar RangeEngine:
// running a dual computation can never perturb scalar results.
//
// Scratch ownership follows TmScratch's rules (DESIGN.md §9): one
// DualTmScratch per DualTmEnv, never shared across threads, each kernel
// touching a fixed disjoint buffer subset.
#pragma once

#include <memory>
#include <vector>

#include "interval/dual_interval.hpp"
#include "poly/dual_poly.hpp"
#include "taylor/taylor_model.hpp"

namespace dwv::taylor {

struct DualTmScratch;

/// Shared settings of a dual TM computation (the TmEnv analogue, plus the
/// tangent direction count).
struct DualTmEnv {
  interval::IVec dom;
  std::uint32_t order = 3;
  double cutoff = 1e-12;
  std::size_t dirs = 0;

  DualTmEnv() = default;
  DualTmEnv(const DualTmEnv& o)
      : dom(o.dom), order(o.order), cutoff(o.cutoff), dirs(o.dirs) {}
  DualTmEnv& operator=(const DualTmEnv& o) {
    dom = o.dom;
    order = o.order;
    cutoff = o.cutoff;
    dirs = o.dirs;
    return *this;  // keeps its own scratch, like TmEnv
  }

  std::size_t nvars() const { return dom.size(); }

  DualTmScratch& scratch() const;
  /// Aliases this env's scratch to `owner`'s (the borrow_scratch pattern of
  /// TmEnv, used by the step's time-extended env).
  void borrow_scratch(const DualTmEnv& owner) const;

 private:
  mutable std::shared_ptr<DualTmScratch> scratch_;
};

/// Dual Taylor model: value + tangent polynomials, dual remainder.
struct DualTm {
  poly::DualPoly p;
  interval::DualInterval rem;

  /// In-place analogue of TaylorModel::assign_constant, with optional
  /// coefficient tangents dc (length = dirs; may be null for a plain
  /// constant). Pushes only nonzero coefficients, like the scalar code.
  void assign_constant(std::size_t nvars, std::size_t dirs, double c,
                       const double* dc) {
    p.reset(nvars, dirs);
    if (c != 0.0) p.val.push_term(0, c);
    if (dc != nullptr) {
      for (std::size_t k = 0; k < dirs; ++k) {
        if (dc[k] != 0.0) p.tan[k].push_term(0, dc[k]);
      }
    }
    rem = interval::DualInterval::constant(interval::Interval(0.0), dirs);
  }
};

using DualTmVec = std::vector<DualTm>;

/// Scratch buffers for the dual kernels; the layout parallels TmScratch.
struct DualTmScratch {
  poly::DualPolyScratch dps;
  poly::DualPoly dropped;
  poly::Poly small;

  DualTm acc;
  DualTm term;
  DualTm add_out;
  DualTm mul_out;
  DualTm pow_out;
  DualTm pow_base;
  DualTm pow_tmp;
  DualTm integ;
  DualTm diff;

  /// Scalar TM side-environment for the tangent-only composition chains of
  /// dual_tm_eval_poly_into (monomial products evaluated at coefficient 1
  /// over the arguments' value channels). Owns its own TmScratch, so the
  /// side computations can never touch a scalar pipeline's engine state.
  TmEnv side_env;
  TmVec side_args;
  TaylorModel side_term;
  TaylorModel side_mul;
  TaylorModel side_pow;
  std::vector<std::uint64_t> fkeys;

  /// The step's time-extended dual environment (reach::dual_integrate_step).
  DualTmEnv env_time;
  bool env_time_init = false;
};

inline DualTmScratch& DualTmEnv::scratch() const {
  if (!scratch_) scratch_ = std::make_shared<DualTmScratch>();
  return *scratch_;
}

inline void DualTmEnv::borrow_scratch(const DualTmEnv& owner) const {
  scratch_ = std::shared_ptr<DualTmScratch>(std::shared_ptr<DualTmScratch>(),
                                            &owner.scratch());
}

/// dual_range of the model's polynomial through the env (value channel ==
/// TmEnv::poly_range bits in kSeedIdentical mode).
interval::DualInterval dual_poly_range(const DualTmEnv& env,
                                       const poly::DualPoly& p);

DualTm dual_tm_add(const DualTm& a, const DualTm& b);
DualTm dual_tm_sub(const DualTm& a, const DualTm& b);
/// Scale by a parameter-independent scalar (mirrors tm_scale).
DualTm dual_tm_scale(const DualTm& a, double s);
/// Scale by scalar s whose derivative is e_dir (dir < dirs); pass
/// dir = npos for a parameter-independent s.
DualTm dual_tm_scale_dir(const DualTm& a, double s, std::size_t dir);

/// Mirrors tm_truncate_inplace: value-channel degree split + cutoff sweep
/// exactly as scalar; tangent polynomials are degree-split alongside
/// (structural), but cutoff-pruned VALUE keys keep their tangent terms — a
/// +-h perturbation re-introduces the coefficient far above the cutoff, so
/// perturbed runs keep the term (central-difference consistency).
void dual_tm_truncate_inplace(const DualTmEnv& env, DualTm& tm);

/// Mirrors tm_mul_into (same remainder formula, left-associated).
void dual_tm_mul_into(const DualTmEnv& env, const DualTm& a, const DualTm& b,
                      DualTm& out);

/// Mirrors tm_pow_into (n <= 3 legacy chain, square-and-multiply above).
void dual_tm_pow_into(const DualTmEnv& env, const DualTm& a, std::uint32_t n,
                      DualTm& out);

/// Mirrors tm_range.
interval::DualInterval dual_tm_range(const DualTmEnv& env, const DualTm& tm);

/// Mirrors tm_eval_poly_into, with a DUAL coefficient polynomial `f` (the
/// controller's output polynomial differentiates w.r.t. its own
/// coefficients; dynamics polynomials pass zero tangents). Keys present
/// only in f's tangent channel contribute d c_k * (monomial product over
/// the argument value channels) — evaluated once through the scalar TM
/// kernels in the side environment — to the tangents only.
void dual_tm_eval_poly_into(const DualTmEnv& env, const poly::DualPoly& f,
                            const DualTmVec& args, DualTm& out);

/// Mirrors tm_integrate_time_into (per-channel antiderivative; the
/// remainder transport hull(0, rem * tmax) in dual arithmetic).
void dual_tm_integrate_time_into(const DualTmEnv& env, const DualTm& tm,
                                 std::size_t time_var, DualTm& out);

/// Mirrors tm_subst_last_into per channel.
void dual_tm_subst_last_into(const DualTmEnv& env, const DualTm& tm, double c,
                             DualTm& out);

/// Mirrors taylor::tm_affine (activations.cpp): acc = b + sum_j w_j in_j,
/// truncated. `wdir[j]` is the parameter direction of weight j (npos for a
/// parameter-independent weight). The scalar code skips w_j == 0 terms;
/// the dual version keeps that skip on the value channel and adds the
/// tangent-only contribution d w_j * in_j (value channel) instead.
DualTm dual_tm_affine(const DualTmEnv& env, const DualTmVec& in,
                      const linalg::Vec& w,
                      const std::vector<std::size_t>& wdir, double b);

/// Box hull of a dual TM vector's range (mirrors tm_vec_range).
std::vector<interval::DualInterval> dual_tm_vec_range(const DualTmEnv& env,
                                                      const DualTmVec& v);

constexpr std::size_t kNoDir = static_cast<std::size_t>(-1);

}  // namespace dwv::taylor
