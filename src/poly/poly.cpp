#include "poly/poly.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dwv::poly {

std::uint32_t total_degree(const Exponents& e) {
  std::uint32_t d = 0;
  for (auto x : e) d += x;
  return d;
}

namespace {

[[noreturn]] void throw_key_overflow(std::size_t nvars, std::size_t var,
                                     std::uint64_t exp) {
  std::ostringstream os;
  os << "poly: exponent " << exp << " of variable " << var
     << " exceeds the packed-key budget (" << key_bits(nvars)
     << " bits per variable over " << nvars
     << " variables, max exponent " << key_max_exp(nvars) << ")";
  throw std::overflow_error(os.str());
}

}  // namespace

bool try_encode_key(const Exponents& e, std::uint64_t& key) {
  const std::size_t n = e.size();
  const std::uint32_t bits = key_bits(n);
  const std::uint32_t cap = key_max_exp(n);
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (e[i] > cap) return false;
    k = (k << bits) | static_cast<std::uint64_t>(e[i]);
  }
  key = k;
  return true;
}

std::uint64_t encode_key(const Exponents& e) {
  const std::size_t n = e.size();
  const std::uint32_t cap = key_max_exp(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (e[i] > cap) throw_key_overflow(n, i, e[i]);
  }
  std::uint64_t k = 0;
  const std::uint32_t bits = key_bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    k = (k << bits) | static_cast<std::uint64_t>(e[i]);
  }
  return k;
}

void decode_key(std::uint64_t key, std::size_t nvars, Exponents& out) {
  out.resize(nvars);
  for (std::size_t i = 0; i < nvars; ++i) out[i] = key_exp(key, nvars, i);
}

void stable_sort_terms(std::vector<Term>& v, std::vector<Term>& tmp) {
  const std::size_t total = v.size();
  if (total < 2) return;
  std::vector<Term>* src = &v;
  std::vector<Term>* dst = &tmp;
  for (std::size_t width = 1; width < total; width *= 2) {
    dst->resize(total);
    for (std::size_t start = 0; start < total; start += 2 * width) {
      const std::size_t mid = std::min(start + width, total);
      const std::size_t end = std::min(start + 2 * width, total);
      std::size_t i = start, j = mid, w = start;
      // <= keeps equal keys in input order (left run first): stability.
      while (i < mid && j < end) {
        if ((*src)[i].key <= (*src)[j].key)
          (*dst)[w++] = (*src)[i++];
        else
          (*dst)[w++] = (*src)[j++];
      }
      while (i < mid) (*dst)[w++] = (*src)[i++];
      while (j < end) (*dst)[w++] = (*src)[j++];
    }
    std::swap(src, dst);
  }
  if (src != &v) v.swap(*src);
}

Poly Poly::constant(std::size_t nvars, double c) {
  Poly p(nvars);
  if (c != 0.0) p.terms_.push_back({0, c});
  return p;
}

Poly Poly::variable(std::size_t nvars, std::size_t i) {
  assert(i < nvars);
  if (key_max_exp(nvars) < 1) throw_key_overflow(nvars, i, 1);
  Poly p(nvars);
  p.terms_.push_back({1ull << key_shift(nvars, i), 1.0});
  return p;
}

std::uint32_t Poly::degree() const {
  std::uint32_t d = 0;
  for (const Term& t : terms_) d = std::max(d, key_degree(t.key, nvars_));
  return d;
}

double Poly::coeff(const Exponents& e) const {
  if (e.size() != nvars_) return 0.0;
  std::uint64_t key = 0;
  if (!try_encode_key(e, key)) return 0.0;
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), key,
      [](const Term& t, std::uint64_t k) { return t.key < k; });
  return (it != terms_.end() && it->key == key) ? it->coeff : 0.0;
}

void Poly::add_term(const Exponents& e, double c) {
  assert(e.size() == nvars_);
  if (c == 0.0) return;
  add_term_key(encode_key(e), c);
}

void Poly::add_term_key(std::uint64_t key, double c) {
  if (c == 0.0) return;
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), key,
      [](const Term& t, std::uint64_t k) { return t.key < k; });
  if (it != terms_.end() && it->key == key) {
    it->coeff += c;
    if (it->coeff == 0.0) terms_.erase(it);
  } else {
    terms_.insert(it, Term{key, c});
  }
}

// Merge a and b into out. Per common key the single addition a.c + (+-b.c)
// matches what the old `for (o terms) add_term(e, c)` loop computed; zero
// contributions are skipped and exactly-zero sums dropped, replicating
// add_term's semantics bit for bit.
void Poly::merge_into(const Poly& a, const Poly& b, bool negate, Poly& out) {
  assert(&out != &a && &out != &b);
  assert(a.nvars_ == b.nvars_ || a.is_zero() || b.is_zero());
  out.reset(a.nvars_ != 0 ? a.nvars_ : b.nvars_);
  const std::size_t na = a.terms_.size(), nb = b.terms_.size();
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const Term& ta = a.terms_[i];
    const Term& tb = b.terms_[j];
    if (ta.key < tb.key) {
      out.terms_.push_back(ta);
      ++i;
    } else if (ta.key > tb.key) {
      const double cb = negate ? -tb.coeff : tb.coeff;
      if (cb != 0.0) out.terms_.push_back({tb.key, cb});
      ++j;
    } else {
      const double cb = negate ? -tb.coeff : tb.coeff;
      if (cb == 0.0) {
        out.terms_.push_back(ta);
      } else {
        const double sum = ta.coeff + cb;
        if (sum != 0.0) out.terms_.push_back({ta.key, sum});
      }
      ++i;
      ++j;
    }
  }
  for (; i < na; ++i) out.terms_.push_back(a.terms_[i]);
  for (; j < nb; ++j) {
    const double cb = negate ? -b.terms_[j].coeff : b.terms_[j].coeff;
    if (cb != 0.0) out.terms_.push_back({b.terms_[j].key, cb});
  }
}

void Poly::add_into(const Poly& a, const Poly& b, Poly& out) {
  merge_into(a, b, false, out);
}

void Poly::sub_into(const Poly& a, const Poly& b, Poly& out) {
  merge_into(a, b, true, out);
}

Poly& Poly::operator+=(const Poly& o) {
  thread_local Poly tmp;
  merge_into(*this, o, false, tmp);
  nvars_ = tmp.nvars_;
  terms_ = tmp.terms_;
  return *this;
}

Poly& Poly::operator-=(const Poly& o) {
  thread_local Poly tmp;
  merge_into(*this, o, true, tmp);
  nvars_ = tmp.nvars_;
  terms_ = tmp.terms_;
  return *this;
}

Poly& Poly::operator*=(double s) {
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (Term& t : terms_) t.coeff *= s;
  return *this;
}

// Replicates add_term applied to a key-sorted contribution stream: zero
// contributions are skipped without touching the accumulator, exact-zero
// running sums are erased (a later contribution to the same key then
// re-inserts fresh, exactly like the map's erase + emplace).
void Poly::coalesce_into(const std::vector<Term>& in, Poly& out) {
  std::vector<Term>& t = out.terms_;
  for (const Term& x : in) {
    if (x.coeff == 0.0) continue;
    if (!t.empty() && t.back().key == x.key) {
      t.back().coeff += x.coeff;
      if (t.back().coeff == 0.0) t.pop_back();
    } else {
      t.push_back(x);
    }
  }
}

namespace {

// Conservative overflow guard for key addition: when the per-variable max
// exponents of a and b can sum past the field capacity, adding keys could
// silently corrupt neighbouring fields — a documented hard error instead.
void check_mul_overflow(const Poly& a, const Poly& b, std::size_t nv) {
  if (key_bits(nv) == 0) return;  // constants only: keys are all zero
  const std::uint32_t cap = key_max_exp(nv);
  std::uint32_t da = 0, db = 0;
  for (const Term& t : a.terms()) da = std::max(da, key_degree(t.key, nv));
  for (const Term& t : b.terms()) db = std::max(db, key_degree(t.key, nv));
  if (da <= cap && db <= cap && da + db <= cap) return;  // common fast path
  // Exact per-variable check before giving up.
  assert(nv <= 64);
  std::array<std::uint32_t, 64> ma{}, mb{};
  for (const Term& t : a.terms()) {
    for (std::size_t i = 0; i < nv; ++i)
      ma[i] = std::max(ma[i], key_exp(t.key, nv, i));
  }
  for (const Term& t : b.terms()) {
    for (std::size_t i = 0; i < nv; ++i)
      mb[i] = std::max(mb[i], key_exp(t.key, nv, i));
  }
  for (std::size_t i = 0; i < nv; ++i) {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(ma[i]) + static_cast<std::uint64_t>(mb[i]);
    if (sum > cap) throw_key_overflow(nv, i, sum);
  }
}

}  // namespace

void Poly::mul_into(const Poly& a, const Poly& b, Poly& out, PolyScratch& s) {
  assert(&out != &a && &out != &b);
  assert(a.nvars_ == b.nvars_ || a.is_zero() || b.is_zero());
  out.reset(std::max(a.nvars_, b.nvars_));
  if (a.terms_.empty() || b.terms_.empty()) return;
  check_mul_overflow(a, b, out.nvars_);

  // Row-major products: run ia is key-sorted (b's keys ascend and key
  // addition with a fixed a-key preserves order), so the buffer is |a|
  // sorted runs of length |b| — in exactly the (ia, ib) order the old
  // nested add_term loop accumulated in.
  const std::size_t na = a.terms_.size(), nb = b.terms_.size();
  const std::size_t total = na * nb;
  s.prod.resize(total);
  std::size_t w = 0;
  for (std::size_t ia = 0; ia < na; ++ia) {
    const Term& ta = a.terms_[ia];
    for (std::size_t ib = 0; ib < nb; ++ib) {
      const Term& tb = b.terms_[ib];
      s.prod[w++] = {ta.key + tb.key, ta.coeff * tb.coeff};
    }
  }

  // Stable bottom-up merge of the runs: equal keys keep run order (lower
  // ia first), i.e. the map's accumulation order per output monomial.
  std::vector<Term>* src = &s.prod;
  std::vector<Term>* dst = &s.tmp;
  for (std::size_t width = nb; width < total; width *= 2) {
    dst->resize(total);
    for (std::size_t start = 0; start < total; start += 2 * width) {
      const std::size_t mid = std::min(start + width, total);
      const std::size_t end = std::min(start + 2 * width, total);
      std::size_t i = start, j = mid, k = start;
      while (i < mid && j < end) {
        if ((*src)[i].key <= (*src)[j].key)
          (*dst)[k++] = (*src)[i++];
        else
          (*dst)[k++] = (*src)[j++];
      }
      while (i < mid) (*dst)[k++] = (*src)[i++];
      while (j < end) (*dst)[k++] = (*src)[j++];
    }
    std::swap(src, dst);
  }
  coalesce_into(*src, out);
}

Poly operator*(const Poly& a, const Poly& b) {
  thread_local PolyScratch scratch;
  Poly r;
  Poly::mul_into(a, b, r, scratch);
  return r;
}

double Poly::eval(const linalg::Vec& x) const {
  assert(x.size() == nvars_);
  const std::uint32_t bits = key_bits(nvars_);
  const std::uint64_t mask = key_field_mask(nvars_);
  double s = 0.0;
  for (const Term& t : terms_) {
    double m = t.coeff;
    for (std::size_t i = 0; i < nvars_; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (t.key >> (bits * (nvars_ - 1 - i))) & mask);
      for (std::uint32_t k = 0; k < e; ++k) m *= x[i];
    }
    s += m;
  }
  return s;
}

interval::Interval Poly::eval_range(const interval::IVec& dom) const {
  assert(dom.size() == nvars_);
  const std::uint32_t bits = key_bits(nvars_);
  const std::uint64_t mask = key_field_mask(nvars_);
  interval::Interval s(0.0);
  for (const Term& t : terms_) {
    interval::Interval m(t.coeff);
    for (std::size_t i = 0; i < nvars_; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (t.key >> (bits * (nvars_ - 1 - i))) & mask);
      if (e > 0) m *= interval::pow_n(dom[i], e);
    }
    s += m;
  }
  return s;
}

Poly Poly::compose(const std::vector<Poly>& subs) const {
  assert(subs.size() == nvars_);
  const std::size_t out_vars = subs.empty() ? 0 : subs[0].nvars();
  Poly r(out_vars);
  for (const Term& t : terms_) {
    Poly m = Poly::constant(out_vars, t.coeff);
    for (std::size_t i = 0; i < nvars_; ++i) {
      const std::uint32_t e = key_exp(t.key, nvars_, i);
      if (e > 0) m = m * pow(subs[i], e);
    }
    r += m;
  }
  return r;
}

void Poly::derivative_into(std::size_t i, Poly& out) const {
  assert(i < nvars_);
  assert(&out != this);
  out.reset(nvars_);
  // d/dx_i subtracts the same key delta from every term with e_i > 0:
  // strictly order-preserving and collision-free, so a plain append keeps
  // the invariant. Zero products are skipped like add_term would.
  const std::uint64_t unit = 1ull << key_shift(nvars_, i);
  for (const Term& t : terms_) {
    const std::uint32_t e = key_exp(t.key, nvars_, i);
    if (e == 0) continue;
    const double c = t.coeff * static_cast<double>(e);
    if (c == 0.0) continue;
    out.terms_.push_back({t.key - unit, c});
  }
}

Poly Poly::derivative(std::size_t i) const {
  Poly r;
  derivative_into(i, r);
  return r;
}

std::pair<Poly, Poly> Poly::split_by_degree(std::uint32_t max_degree) const {
  Poly kept(nvars_);
  Poly dropped(nvars_);
  for (const Term& t : terms_) {
    if (key_degree(t.key, nvars_) <= max_degree)
      kept.terms_.push_back(t);
    else
      dropped.terms_.push_back(t);
  }
  return {kept, dropped};
}

void Poly::split_by_degree_into(std::uint32_t max_degree, Poly& dropped) {
  assert(&dropped != this);
  dropped.reset(nvars_);
  std::size_t w = 0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (key_degree(terms_[i].key, nvars_) <= max_degree)
      terms_[w++] = terms_[i];
    else
      dropped.terms_.push_back(terms_[i]);
  }
  terms_.resize(w);
}

void Poly::prune_small_into(double tol, Poly& dropped) {
  assert(&dropped != this);
  dropped.reset(nvars_);
  std::size_t w = 0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (std::abs(terms_[i].coeff) <= tol && terms_[i].key != 0)
      dropped.terms_.push_back(terms_[i]);
    else
      terms_[w++] = terms_[i];
  }
  terms_.resize(w);
}

void Poly::truncate_discard(std::uint32_t max_degree, double tol) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    const Term& t = terms_[i];
    if (key_degree(t.key, nvars_) > max_degree) continue;
    if (tol > 0.0 && std::abs(t.coeff) <= tol && t.key != 0) continue;
    terms_[w++] = t;
  }
  terms_.resize(w);
}

Poly Poly::prune_small(double tol) {
  Poly dropped;
  prune_small_into(tol, dropped);
  return dropped;
}

void Poly::lift_vars_into(std::size_t new_nvars, Poly& out) const {
  assert(new_nvars >= nvars_);
  assert(&out != this);
  out.reset(new_nvars);
  const std::uint32_t cap = key_max_exp(new_nvars);
  const std::uint32_t new_bits = key_bits(new_nvars);
  for (const Term& t : terms_) {
    if (t.coeff == 0.0) continue;  // the old lift's add_term skipped zeros
    std::uint64_t k = 0;
    for (std::size_t i = 0; i < nvars_; ++i) {
      const std::uint32_t e = key_exp(t.key, nvars_, i);
      if (e > cap) throw_key_overflow(new_nvars, i, e);
      k = (k << new_bits) | static_cast<std::uint64_t>(e);
    }
    k <<= new_bits * (new_nvars - nvars_);
    out.terms_.push_back({k, t.coeff});
  }
}

void Poly::drop_last_var_into(Poly& out) const {
  assert(nvars_ >= 1);
  assert(&out != this);
  const std::size_t new_nvars = nvars_ - 1;
  out.reset(new_nvars);
  const std::uint32_t new_bits = key_bits(new_nvars);
  const std::uint32_t cap = key_max_exp(new_nvars);
  for (const Term& t : terms_) {
    assert(key_exp(t.key, nvars_, nvars_ - 1) == 0 &&
           "cannot drop a live variable");
    if (t.coeff == 0.0) continue;  // add_term semantics of the old drop
    std::uint64_t k = 0;
    for (std::size_t i = 0; i < new_nvars; ++i) {
      const std::uint32_t e = key_exp(t.key, nvars_, i);
      if (e > cap) throw_key_overflow(new_nvars, i, e);
      k = (k << new_bits) | static_cast<std::uint64_t>(e);
    }
    out.terms_.push_back({k, t.coeff});
  }
}

double Poly::max_abs_coeff() const {
  double m = 0.0;
  for (const Term& t : terms_) m = std::max(m, std::abs(t.coeff));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Poly& p) {
  if (p.terms_.empty()) return os << '0';
  bool first = true;
  for (const Term& t : p.terms_) {
    const double c = t.coeff;
    if (!first) os << (c >= 0 ? " + " : " - ");
    else if (c < 0) os << '-';
    first = false;
    os << std::abs(c);
    for (std::size_t i = 0; i < p.nvars_; ++i) {
      const std::uint32_t e = key_exp(t.key, p.nvars_, i);
      if (e == 0) continue;
      os << "*x" << i;
      if (e > 1) os << '^' << e;
    }
  }
  return os;
}

Poly pow(const Poly& base, std::uint32_t n) {
  Poly r = Poly::constant(base.nvars(), 1.0);
  Poly b = base;
  std::uint32_t k = n;
  while (k > 0) {
    if (k & 1u) r = r * b;
    k >>= 1u;
    if (k) b = b * b;
  }
  return r;
}

}  // namespace dwv::poly
