// Sparse multivariate polynomials over a fixed number of variables.
//
// These are the symbolic backbone of the Taylor-model arithmetic: a Taylor
// model is a Poly plus an interval remainder. Terms are kept in a sorted
// map keyed by exponent vector, which keeps every operation deterministic
// (important for reproducible benchmarks).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "interval/ivec.hpp"
#include "linalg/vec.hpp"

namespace dwv::poly {

/// Exponent vector of a monomial; exps.size() == number of variables.
using Exponents = std::vector<std::uint32_t>;

/// Total degree of an exponent vector.
std::uint32_t total_degree(const Exponents& e);

/// Sparse polynomial in `nvars` real variables.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::size_t nvars) : nvars_(nvars) {}

  /// The constant polynomial c.
  static Poly constant(std::size_t nvars, double c);
  /// The coordinate polynomial x_i.
  static Poly variable(std::size_t nvars, std::size_t i);

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  std::size_t term_count() const { return terms_.size(); }
  std::uint32_t degree() const;

  /// Coefficient of a monomial (0 when absent).
  double coeff(const Exponents& e) const;
  /// Adds `c` to the coefficient of monomial `e`; drops resulting zeros.
  void add_term(const Exponents& e, double c);
  /// The constant term.
  double constant_term() const;

  const std::map<Exponents, double>& terms() const { return terms_; }

  Poly& operator+=(const Poly& o);
  Poly& operator-=(const Poly& o);
  Poly& operator*=(double s);
  friend Poly operator+(Poly a, const Poly& b) { return a += b; }
  friend Poly operator-(Poly a, const Poly& b) { return a -= b; }
  friend Poly operator*(Poly a, double s) { return a *= s; }
  friend Poly operator*(double s, Poly a) { return a *= s; }
  friend Poly operator-(Poly a) { return a *= -1.0; }
  friend Poly operator*(const Poly& a, const Poly& b);

  /// Point evaluation.
  double eval(const linalg::Vec& x) const;

  /// Sound interval enclosure of the range over box `dom` (naive interval
  /// extension; adequate for the short, low-degree polynomials used here).
  interval::Interval eval_range(const interval::IVec& dom) const;

  /// Substitutes polynomial `subs[i]` for variable i (composition). All
  /// substituted polynomials must share a variable count, which becomes the
  /// variable count of the result.
  Poly compose(const std::vector<Poly>& subs) const;

  /// Partial derivative with respect to variable i.
  Poly derivative(std::size_t i) const;

  /// Splits into (kept, dropped): kept has total degree <= max_degree,
  /// dropped contains the rest. Used for TM truncation.
  std::pair<Poly, Poly> split_by_degree(std::uint32_t max_degree) const;

  /// Removes terms with |coeff| <= tol, returning the dropped part.
  Poly prune_small(double tol);

  double max_abs_coeff() const;

  friend std::ostream& operator<<(std::ostream& os, const Poly& p);

 private:
  std::size_t nvars_ = 0;
  std::map<Exponents, double> terms_;
};

/// Power of a polynomial by repeated squaring.
Poly pow(const Poly& base, std::uint32_t n);

}  // namespace dwv::poly
