// Sparse multivariate polynomials over a fixed number of variables.
//
// These are the symbolic backbone of the Taylor-model arithmetic: a Taylor
// model is a Poly plus an interval remainder. Terms are stored as a single
// sorted vector of packed monomials: each exponent vector is encoded into
// one uint64_t key with a fixed bit-field per variable, variable 0 in the
// MOST significant field, so numeric key order equals the lexicographic
// order the previous std::map<Exponents, double> representation iterated
// in. Every operation visits terms in that same order, which keeps all
// floating-point results bit-identical to the map-based implementation
// (DESIGN.md section 9) while replacing per-term heap nodes with flat,
// cache-friendly scans.
//
// Bit budget: key_bits(nvars) bits per variable (32 for nvars <= 2, else
// 64 / nvars). Exponents that do not fit are a hard error at encode time
// (std::overflow_error) — never silent wraparound. Polynomials over more
// than 64 variables can only represent constants.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>
#include <vector>

#include "interval/ivec.hpp"
#include "linalg/vec.hpp"

namespace dwv::poly {

/// Exponent vector of a monomial; exps.size() == number of variables.
using Exponents = std::vector<std::uint32_t>;

/// Total degree of an exponent vector.
std::uint32_t total_degree(const Exponents& e);

/// One packed monomial: bit-packed exponents plus coefficient.
struct Term {
  std::uint64_t key = 0;
  double coeff = 0.0;

  friend bool operator==(const Term& a, const Term& b) {
    return a.key == b.key && a.coeff == b.coeff;
  }
};

/// Bits per exponent field for a given variable count.
inline std::uint32_t key_bits(std::size_t nvars) {
  if (nvars <= 2) return 32;
  if (nvars > 64) return 0;
  return static_cast<std::uint32_t>(64 / nvars);
}

/// Largest exponent a field can hold (0 when nvars > 64: constants only).
inline std::uint32_t key_max_exp(std::size_t nvars) {
  const std::uint32_t b = key_bits(nvars);
  if (b == 0) return 0;
  if (b >= 32) return 0xffffffffu;
  return (1u << b) - 1u;
}

/// Bit offset of variable i's field (variable 0 is most significant).
inline std::uint32_t key_shift(std::size_t nvars, std::size_t i) {
  assert(i < nvars);
  return key_bits(nvars) * static_cast<std::uint32_t>(nvars - 1 - i);
}

inline std::uint64_t key_field_mask(std::size_t nvars) {
  const std::uint32_t b = key_bits(nvars);
  if (b == 0) return 0;
  if (b >= 32) return 0xffffffffull;
  return (1ull << b) - 1ull;
}

/// Packs an exponent vector; throws std::overflow_error when a component
/// exceeds the bit budget.
std::uint64_t encode_key(const Exponents& e);

/// Packs without throwing; returns false on overflow.
bool try_encode_key(const Exponents& e, std::uint64_t& key);

/// Exponent of variable i in a packed key.
inline std::uint32_t key_exp(std::uint64_t key, std::size_t nvars,
                             std::size_t i) {
  return static_cast<std::uint32_t>((key >> key_shift(nvars, i)) &
                                    key_field_mask(nvars));
}

/// Total degree of a packed key.
inline std::uint32_t key_degree(std::uint64_t key, std::size_t nvars) {
  const std::uint32_t b = key_bits(nvars);
  if (nvars == 0 || b == 0) return 0;
  const std::uint64_t mask = key_field_mask(nvars);
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < nvars; ++i) {
    d += static_cast<std::uint32_t>(key & mask);
    key >>= b;
  }
  return d;
}

/// Unpacks a key into an exponent vector (resized to nvars).
void decode_key(std::uint64_t key, std::size_t nvars, Exponents& out);

/// Reusable buffers for the multiply kernel (and stable key sorts). One
/// per computation context; see TmScratch ownership rules in DESIGN.md §9.
struct PolyScratch {
  std::vector<Term> prod;
  std::vector<Term> tmp;
};

/// Stable bottom-up merge sort of terms by key (equal keys keep their
/// input order — the property the bit-identity argument rests on). Uses
/// `tmp` as scratch; no allocation once both vectors are warm.
void stable_sort_terms(std::vector<Term>& v, std::vector<Term>& tmp);

/// Sparse polynomial in `nvars` real variables.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::size_t nvars) : nvars_(nvars) {}

  /// The constant polynomial c.
  static Poly constant(std::size_t nvars, double c);
  /// The coordinate polynomial x_i.
  static Poly variable(std::size_t nvars, std::size_t i);
  /// Adopts `terms` verbatim (must be sorted by key strictly ascending, in
  /// this nvars layout). The deserialization hook: a stored term vector is
  /// re-adopted without re-sorting or zero-dropping, so the round-tripped
  /// polynomial carries exactly the bits that were written.
  static Poly from_sorted_terms(std::size_t nvars, std::vector<Term> terms) {
    Poly p(nvars);
    assert(std::is_sorted(
        terms.begin(), terms.end(),
        [](const Term& a, const Term& b) { return a.key < b.key; }));
    p.terms_ = std::move(terms);
    return p;
  }

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  std::size_t term_count() const { return terms_.size(); }
  std::uint32_t degree() const;

  /// Clears terms and re-targets the variable count (capacity retained).
  void reset(std::size_t nvars) {
    nvars_ = nvars;
    terms_.clear();
  }

  /// Coefficient of a monomial (0 when absent or not encodable).
  double coeff(const Exponents& e) const;
  /// Adds `c` to the coefficient of monomial `e`; drops resulting zeros.
  void add_term(const Exponents& e, double c);
  /// Same, with a pre-packed key (must belong to this poly's layout).
  void add_term_key(std::uint64_t key, double c);
  /// Appends a term whose key is strictly above every stored key. The
  /// fast path for kernels that produce terms already in order.
  void push_term(std::uint64_t key, double c) {
    assert(terms_.empty() || terms_.back().key < key);
    terms_.push_back({key, c});
  }
  /// The constant term.
  double constant_term() const {
    return (!terms_.empty() && terms_.front().key == 0) ? terms_.front().coeff
                                                        : 0.0;
  }

  /// Terms sorted by packed key ascending (== the old map's lex order).
  const std::vector<Term>& terms() const { return terms_; }

  /// Exponent of variable i in term t (decoded in this poly's layout).
  std::uint32_t exp_of(const Term& t, std::size_t i) const {
    return key_exp(t.key, nvars_, i);
  }

  Poly& operator+=(const Poly& o);
  Poly& operator-=(const Poly& o);
  Poly& operator*=(double s);
  friend Poly operator+(Poly a, const Poly& b) { return a += b; }
  friend Poly operator-(Poly a, const Poly& b) { return a -= b; }
  friend Poly operator*(Poly a, double s) { return a *= s; }
  friend Poly operator*(double s, Poly a) { return a *= s; }
  friend Poly operator-(Poly a) { return a *= -1.0; }
  friend Poly operator*(const Poly& a, const Poly& b);

  /// out = a + b (merge; out must not alias a or b). Accumulation order
  /// per key matches the old add_term loop, so results are bit-identical.
  static void add_into(const Poly& a, const Poly& b, Poly& out);
  /// out = a - b.
  static void sub_into(const Poly& a, const Poly& b, Poly& out);
  /// out = a * b via key addition: the row-major product terms form |a|
  /// key-sorted runs that are stable-merged and coalesced in lex order —
  /// the exact accumulation order of the old nested add_term loop.
  static void mul_into(const Poly& a, const Poly& b, Poly& out,
                       PolyScratch& s);
  /// Appends a key-sorted contribution stream to out's terms, accumulating
  /// equal keys with add_term semantics (skip zero contributions, drop
  /// exact-zero running sums). The stream must be sorted with equal keys in
  /// accumulation order; out must already target the right variable count.
  static void coalesce_into(const std::vector<Term>& in, Poly& out);

  /// Point evaluation.
  double eval(const linalg::Vec& x) const;

  /// Sound interval enclosure of the range over box `dom` (naive interval
  /// extension; adequate for the short, low-degree polynomials used here).
  interval::Interval eval_range(const interval::IVec& dom) const;

  /// Substitutes polynomial `subs[i]` for variable i (composition). All
  /// substituted polynomials must share a variable count, which becomes the
  /// variable count of the result.
  Poly compose(const std::vector<Poly>& subs) const;

  /// Partial derivative with respect to variable i.
  Poly derivative(std::size_t i) const;
  void derivative_into(std::size_t i, Poly& out) const;

  /// Splits into (kept, dropped): kept has total degree <= max_degree,
  /// dropped contains the rest. Used for TM truncation.
  std::pair<Poly, Poly> split_by_degree(std::uint32_t max_degree) const;
  /// In-place variant: *this becomes the kept part (single linear pass).
  void split_by_degree_into(std::uint32_t max_degree, Poly& dropped);

  /// Removes terms with |coeff| <= tol, returning the dropped part.
  Poly prune_small(double tol);
  /// In-place variant writing the dropped part into `dropped`.
  void prune_small_into(double tol, Poly& dropped);

  /// Fused split_by_degree + prune_small for callers that discard the
  /// swept-away terms: one linear pass, no dropped/small buffers. The kept
  /// term list is exactly what split_by_degree_into(max_degree, _) followed
  /// by prune_small_into(tol, _) (the latter only when tol > 0) would leave.
  void truncate_discard(std::uint32_t max_degree, double tol);

  /// Re-encodes into a layout with more variables (appended, exponent 0).
  /// Skips zero coefficients, matching the old lift's add_term semantics.
  void lift_vars_into(std::size_t new_nvars, Poly& out) const;
  /// Drops the last variable (must have exponent 0 everywhere).
  void drop_last_var_into(Poly& out) const;

  double max_abs_coeff() const;

  friend std::ostream& operator<<(std::ostream& os, const Poly& p);

 private:
  static void merge_into(const Poly& a, const Poly& b, bool negate,
                         Poly& out);

  std::size_t nvars_ = 0;
  /// Sorted by key ascending; keys unique. Zero coefficients can persist
  /// (scalar multiply keeps them, exactly like the map representation did);
  /// only the add/accumulate paths drop exact zeros.
  std::vector<Term> terms_;
};

/// Power of a polynomial by repeated squaring.
Poly pow(const Poly& base, std::uint32_t n);

}  // namespace dwv::poly
