// Batched range-bounding engine for the interval hot path.
//
// Every validated flowpipe step bounds dozens of polynomials over the SAME
// domain box (the unit set-variable box, or the time-extended box with
// tau in [0, h]): truncation remainders, multiplication cross terms,
// tm_range calls during remainder validation, tube hulls. The naive
// Poly::eval_range recomputes interval::pow_n (two std::pow calls) for
// every (term, variable) pair of every query. This engine amortizes that
// work: it keeps a small MRU cache of per-domain tables of interval powers
// dom[v]^k — built once per distinct domain (keyed by the domain's EXACT
// bits, invalidated on any change) — and walks the packed uint64 term
// vector directly, multiplying table entries. On top of the walk, each
// table carries a small result memo keyed by the exact poly bits and query
// kind: verifiers bound the SAME models repeatedly (one verdict check per
// constraint, tube hulls, remainder validation retries), and a memo hit
// returns the recorded bits of the earlier identical query.
//
// Bit-identity contract (DESIGN.md section 10): in the default
// kSeedIdentical mode the engine reproduces Poly::eval_range (and the
// map-based poly::ref::RefPoly::eval_range oracle) bit for bit. The table
// entries are exactly interval::pow_n(dom[v], k), and the kernel preserves
// the seed's term order and per-term accumulation order, so every
// floating-point operation sequence is unchanged — only redundant pow_n
// evaluations disappear.
//
// The opt-in kCenteredForm mode additionally intersects the naive
// extension with a mean-value (centered) form f(m) + grad_f(dom)·(dom - m)
// computed from the same cached tables. It is sound (always contains the
// true range, verified by containment tests, not bit tests) but NOT
// bit-identical to the seed; keep it off when reproducibility against
// recorded trajectories matters.
//
// Ownership / threading: engines are NOT thread-safe. Each
// taylor::TmScratch owns one (so every TmEnv copy handed to a worker
// thread gets private engine state, matching the scratch ownership rules
// of DESIGN.md section 9); free functions without an env use a
// thread_local engine.
#pragma once

#include <cstdint>
#include <vector>

#include "interval/ivec.hpp"
#include "interval/lanes.hpp"
#include "poly/poly.hpp"

namespace dwv::poly {

/// Range-bounding mode; see the bit-identity contract above.
enum class RangeMode {
  /// Bit-identical to the seed's Poly::eval_range (default).
  kSeedIdentical,
  /// Naive extension intersected with the mean-value/centered form.
  /// Sound but tighter: results are contained in the kSeedIdentical ones.
  kCenteredForm,
};

struct RangeOptions {
  RangeMode mode = RangeMode::kSeedIdentical;
};

/// Counters for cache behaviour (per engine, monotone).
struct RangeStats {
  std::uint64_t queries = 0;       ///< eval_range/derivative_range calls
  std::uint64_t table_builds = 0;  ///< new domain tables built
  std::uint64_t table_reuses = 0;  ///< queries served by a cached table
  std::uint64_t pow_evals = 0;     ///< interval::pow_n table fills
  std::uint64_t memo_hits = 0;     ///< queries answered from the result memo
  std::uint64_t memo_stores = 0;   ///< results recorded in the memo
  std::uint64_t pin_hits = 0;      ///< queries served by a pinned domain
};

/// Amortizing range bounder; one per computation context (see above).
class RangeEngine {
 public:
  /// Sound enclosure of p's range over dom in the given mode.
  interval::Interval eval_range(const Poly& p, const interval::IVec& dom,
                                const RangeOptions& opt);
  /// Default-mode (seed-identical) convenience overload.
  interval::Interval eval_range(const Poly& p, const interval::IVec& dom) {
    return eval_range(p, dom, RangeOptions{});
  }

  /// Sound enclosure of (d p / d x_var)'s range over dom — what
  /// p.derivative(var).eval_range(dom) computes, bit for bit, without
  /// materializing the derivative polynomial.
  interval::Interval derivative_range(const Poly& p, std::size_t var,
                                      const interval::IVec& dom);

  const RangeStats& stats() const { return stats_; }
  /// Drops every cached table (stats are kept).
  void clear() { tables_.clear(); }

  /// Toggles the per-table result memo (default on). The memo returns the
  /// recorded bits of an earlier identical query — verifiers re-bound the
  /// same models several times (per-constraint verdict checks, tube hulls,
  /// remainder validation retries) — so results are unchanged either way;
  /// benchmarks turn it off to time the walk kernels themselves.
  void set_result_memo(bool on) { memo_enabled_ = on; }

  // --- Pinned-domain streaming profile -----------------------------------
  // A long-lived caller that owns its query domains (the batched TM
  // stepper: one set-variable box and one time-extended box, both with
  // stable addresses and stable bits across thousands of queries) can pin
  // them. Pinned queries skip the per-query table search (same_bits scan),
  // the per-query power-row preparation scan, and the linear memo scan in
  // favour of pointer identity, cached row pointers, and a direct-mapped
  // memo. Results are BIT-IDENTICAL to the unpinned path: the same power
  // tables feed the same seed-order kernel, and the memo still verifies
  // full term bytes before a hit — only bookkeeping cost changes.
  //
  // Contract: after pin_domain(dom), the caller must not change dom's bits
  // (nor destroy it) without re-pinning; queries on `dom` must pass THAT
  // object (identity, not just equal bits) to take the fast path — other
  // domains fall through to the classic path unchanged. Pinned tables are
  // exempt from MRU eviction until unpin_all().

  /// Pins `dom` (building its table as needed), pre-extending power rows
  /// to exponent `cap_hint`. Re-pinning the same address revalidates bits.
  void pin_domain(const interval::IVec& dom, std::uint32_t cap_hint = 8);
  /// Drops every pin (tables stay cached, eviction protection ends).
  void unpin_all();

 private:
  struct DomainTable {
    /// The domain this table was built for — the cache key (compared by
    /// exact bits) and the source for lazy power extension.
    interval::IVec dom;
    /// powers[v][k] == interval::pow_n(dom[v], k); [v] grown on demand.
    std::vector<std::vector<interval::Interval>> powers;
    /// mid[v] == dom[v].mid(); mid_powers like powers but for the point
    /// interval [mid, mid]. Filled only when kCenteredForm queries run.
    std::vector<double> mid;
    std::vector<std::vector<interval::Interval>> mid_powers;
    /// Memoized query results for this domain: exact poly bits + query
    /// kind -> recorded result. Hash for quick reject, full term-byte
    /// compare before a hit, LRU within kMaxMemo entries.
    struct MemoEntry {
      std::uint64_t hash = 0;
      std::uint32_t kind = 0;  ///< 0 seed eval, 1 centered eval, 2+v deriv
      std::vector<Term> terms;
      interval::Interval result;
      std::uint64_t last_use = 0;
    };
    std::vector<MemoEntry> memo;
    /// Set-associative result memo for pinned queries (lazily sized to
    /// kStreamMemo entries = kStreamMemo / kStreamMemoWays sets): the hash
    /// picks a set, every way is probed (hash + kind reject, then full
    /// term-byte compare), and a miss replaces the least-recently-used way.
    /// The streaming query mix has strong temporal locality (validation
    /// retries and tube hulls re-issue the same polys back to back), so a
    /// direct-mapped memo loses hot entries to conflict evictions; a few
    /// ways with per-set LRU recover the classic memo's hit rate at stream
    /// probe cost.
    struct StreamMemoEntry {
      std::uint64_t hash = 0;
      std::uint32_t kind = 0xffffffffu;
      std::vector<Term> terms;
      interval::Interval result;
      std::uint64_t last_use = 0;
    };
    std::vector<StreamMemoEntry> smemo;
    std::uint64_t smemo_clock = 0;  ///< per-set LRU stamp source
    std::uint64_t last_use = 0;
    /// Bumped whenever a power row grows (possible reallocation), so pins
    /// know to refresh their cached row pointers.
    std::uint64_t row_gen = 0;
    bool pinned = false;  ///< exempt from MRU eviction while true
  };

  /// A pinned domain: pointer identity -> table slot + cached row state.
  struct Pin {
    const interval::IVec* dom = nullptr;
    std::size_t slot = 0;
    std::uint64_t row_gen = 0;  ///< tables_[slot].row_gen the rows match
    std::vector<const interval::Interval*> rows;
    std::vector<std::uint32_t> caps;  ///< max exponent available per row
  };

  /// Finds or builds the table for dom (MRU, capacity kMaxTables).
  DomainTable& table_for(const interval::IVec& dom);

  /// dom[v]^e from the table, extending the row as needed.
  const interval::Interval& power(DomainTable& t, std::size_t v,
                                  std::uint32_t e);
  /// [mid_v, mid_v]^e from the table, extending the row as needed.
  const interval::Interval& mid_power(DomainTable& t, std::size_t v,
                                      std::uint32_t e);

  /// Extends t's power rows to p's per-variable max exponent and returns
  /// raw row pointers (engine-owned scratch; valid until the next call) so
  /// the kernels index powers with no growth checks per multiply.
  const interval::Interval* const* prepare_rows(const Poly& p,
                                                DomainTable& t);

  /// The seed-identical kernel over packed terms.
  interval::Interval naive_range(const Poly& p, DomainTable& t);
  /// Seed-identical kernel reading cached pin row pointers (no prepare
  /// scan); extends rows through the table on cap overflow.
  interval::Interval naive_range_pinned(const Poly& p, Pin& pin);
  /// The pinned fast path of eval_range (same result bits).
  interval::Interval eval_range_pinned(const Poly& p, Pin& pin,
                                       const RangeOptions& opt);
  /// Refreshes pin.rows/caps from its table (after growth/realloc).
  void refresh_pin_rows(Pin& pin);
  Pin* find_pin(const interval::IVec& dom) {
    for (Pin& pin : pins_)
      if (pin.dom == &dom) return &pin;
    return nullptr;
  }
  /// Mean-value form f(mid) + sum_v df/dx_v(dom) * (dom_v - mid_v).
  interval::Interval centered_range(const Poly& p, DomainTable& t);

  /// Result-memo lookup/insert for query `kind` on poly `p` (hash `h`).
  const interval::Interval* memo_find(DomainTable& t, const Poly& p,
                                      std::uint32_t kind, std::uint64_t h);
  void memo_store(DomainTable& t, const Poly& p, std::uint32_t kind,
                  std::uint64_t h, const interval::Interval& r);

  static constexpr std::size_t kMaxTables = 4;
  static constexpr std::size_t kMaxMemo = 32;       ///< entries per table
  static constexpr std::size_t kMaxMemoTerms = 128; ///< memoizable poly size
  static constexpr std::size_t kStreamMemo = 1024;      ///< total entries
  static constexpr std::size_t kStreamMemoWays = 4;     ///< entries per set
  /// Minimum poly size the stream memo caches. 1: with the remainder tape
  /// absorbing most repeat queries, even one-term walks lose to the cheap
  /// hash + probe on the remaining streaming traffic (measured on the
  /// 36-cell TM batch bench).
  static constexpr std::size_t kStreamMemoMinTerms = 1;
  std::vector<DomainTable> tables_;
  std::vector<Pin> pins_;
  std::size_t mru_ = 0;  ///< index of the last-hit table (fast path)
  std::uint64_t clock_ = 0;
  bool memo_enabled_ = true;
  RangeStats stats_;
  // prepare_rows scratch, reused across queries to avoid reallocation.
  std::vector<std::uint32_t> max_e_;
  std::vector<const interval::Interval*> row_ptrs_;
};

/// SoA lane-batched range bounder: evaluates one polynomial over
/// interval::lanes::kWidth independent domain boxes at once, through the
/// lane kernels (AVX2 or scalar, runtime-dispatched). Per lane it performs
/// EXACTLY the operation sequence of RangeEngine::naive_range — power
/// tables filled with interval::pow_n per lane, seed term order, seed
/// accumulation order — so each lane's result is bit-identical to a
/// scalar eval_range over that lane's domain. Unlike RangeEngine there is
/// no MRU table cache, result memo, or hashing: the batched flowpipe
/// stepper rebinds the domain every query anyway, so the bookkeeping
/// would be pure overhead.
///
/// Usage: bind() the SoA domain block (lo[v * kWidth + k] / hi likewise,
/// unused lanes padded with any valid interval), then eval() per poly.
/// Not thread-safe; one instance per worker.
class RangeLanes {
 public:
  static constexpr std::size_t kWidth = interval::lanes::kWidth;

  /// Rebinds the evaluation domain: nvars components of kWidth lanes in
  /// SoA layout. Invalidates the cached power rows.
  void bind(const double* lo, const double* hi, std::size_t nvars);

  /// Lane-parallel naive_range of p over the bound domain; p.nvars() must
  /// equal the bound nvars. Results written SoA (kWidth lo, kWidth hi).
  void eval(const Poly& p, double* out_lo, double* out_hi);

 private:
  /// Grows var v's power row up to exponent e (scalar pow_n per lane).
  void extend_row(std::size_t v, std::uint32_t e);

  std::size_t nvars_ = 0;
  std::vector<double> dom_lo_, dom_hi_;  // nvars * kWidth each
  /// powers_[v] holds blocks of 2*kWidth doubles per exponent: lanes of
  /// pow_n(dom_v, e).lo then lanes of .hi; rows grown on demand.
  std::vector<std::vector<double>> powers_;
  std::vector<std::uint32_t> max_e_;  // exponent filled so far, per var
  // Term accumulator scratch (kWidth lanes each).
  std::vector<double> m_lo_, m_hi_;
};

}  // namespace dwv::poly
