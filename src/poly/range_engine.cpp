#include "poly/range_engine.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace dwv::poly {

using interval::Interval;
using interval::IVec;

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Word-wise hash of the exact term bytes (key and coefficient bits).
std::uint64_t hash_terms(const Poly& p) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ p.terms().size();
  for (const Term& t : p.terms()) {
    h = mix64(h ^ t.key);
    h = mix64(h ^ std::bit_cast<std::uint64_t>(t.coeff));
  }
  return h;
}

// Exact bit equality of two term vectors (memcmp: Term is a {u64, double}
// POD, and coefficient identity must be by bits, not operator==).
bool terms_equal(const std::vector<Term>& a, const std::vector<Term>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Term)) == 0);
}

// Exact-bits domain identity: bit_cast comparison so signed zeros and NaN
// payloads count as distinct (the table caches pow_n of these exact bits).
bool same_bits(const IVec& a, const IVec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].lo()) !=
            std::bit_cast<std::uint64_t>(b[i].lo()) ||
        std::bit_cast<std::uint64_t>(a[i].hi()) !=
            std::bit_cast<std::uint64_t>(b[i].hi())) {
      return false;
    }
  }
  return true;
}

// Cheap multiplicative hash over the exact term bytes, used only by the
// pinned direct-mapped memo. Hash quality affects only the collision rate
// (a full term-byte compare gates every hit), so two fused multiply-xor
// rounds per term beat the classic mix64 chain on the streaming hot path.
std::uint64_t hash_terms_stream(const Poly& p, std::uint32_t kind) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(kind) << 32) ^
                    p.terms().size();
  for (const Term& t : p.terms()) {
    h = (h ^ t.key) * 0x2545f4914f6cdd1dULL;
    h = (h ^ std::bit_cast<std::uint64_t>(t.coeff)) * 0x2545f4914f6cdd1dULL;
  }
  return h ^ (h >> 29);
}

}  // namespace

RangeEngine::DomainTable& RangeEngine::table_for(const IVec& dom) {
  ++clock_;
  // Fast path: the previous query's table (flowpipe runs alternate between
  // at most two domains, so this hits nearly always).
  if (mru_ < tables_.size() && same_bits(tables_[mru_].dom, dom)) {
    DomainTable& t = tables_[mru_];
    t.last_use = clock_;
    ++stats_.table_reuses;
    return t;
  }
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (same_bits(tables_[i].dom, dom)) {
      mru_ = i;
      tables_[i].last_use = clock_;
      ++stats_.table_reuses;
      return tables_[i];
    }
  }
  ++stats_.table_builds;
  std::size_t slot = tables_.size();
  if (tables_.size() < kMaxTables) {
    tables_.emplace_back();
  } else {
    // Evict the least-recently-used UNPINNED table; when everything is
    // pinned, grow past kMaxTables rather than invalidating a pin.
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (tables_[i].pinned) continue;
      if (slot == tables_.size() ||
          tables_[i].last_use < tables_[slot].last_use) {
        slot = i;
      }
    }
    if (slot == tables_.size()) tables_.emplace_back();
  }
  DomainTable& t = tables_[slot];
  t.dom = dom;
  t.powers.assign(dom.size(), {});
  t.mid.clear();
  t.mid_powers.assign(dom.size(), {});
  t.memo.clear();
  t.smemo.clear();
  t.smemo_clock = 0;
  t.last_use = clock_;
  t.row_gen = 0;
  t.pinned = false;
  mru_ = slot;
  return t;
}

const Interval* RangeEngine::memo_find(DomainTable& t, const Poly& p,
                                       std::uint32_t kind, std::uint64_t h) {
  for (DomainTable::MemoEntry& e : t.memo) {
    if (e.kind == kind && e.hash == h && terms_equal(e.terms, p.terms())) {
      e.last_use = clock_;
      ++stats_.memo_hits;
      return &e.result;
    }
  }
  return nullptr;
}

void RangeEngine::memo_store(DomainTable& t, const Poly& p,
                             std::uint32_t kind, std::uint64_t h,
                             const Interval& r) {
  ++stats_.memo_stores;
  DomainTable::MemoEntry* slot = nullptr;
  if (t.memo.size() < kMaxMemo) {
    slot = &t.memo.emplace_back();
  } else {
    slot = &t.memo.front();
    for (DomainTable::MemoEntry& e : t.memo) {
      if (e.last_use < slot->last_use) slot = &e;
    }
  }
  slot->hash = h;
  slot->kind = kind;
  slot->terms = p.terms();
  slot->result = r;
  slot->last_use = clock_;
}

const Interval& RangeEngine::power(DomainTable& t, std::size_t v,
                                   std::uint32_t e) {
  std::vector<Interval>& row = t.powers[v];
  if (e >= row.size()) {
    if (row.empty()) row.push_back(Interval(1.0));
    for (std::uint32_t k = static_cast<std::uint32_t>(row.size()); k <= e;
         ++k) {
      row.push_back(interval::pow_n(t.dom[v], k));
      ++stats_.pow_evals;
    }
    ++t.row_gen;  // row storage may have moved; pins must refresh
  }
  return row[e];
}

const Interval& RangeEngine::mid_power(DomainTable& t, std::size_t v,
                                       std::uint32_t e) {
  if (t.mid.size() != t.dom.size()) {
    t.mid.resize(t.dom.size());
    for (std::size_t i = 0; i < t.dom.size(); ++i) t.mid[i] = t.dom[i].mid();
  }
  std::vector<Interval>& row = t.mid_powers[v];
  if (e >= row.size()) {
    if (row.empty()) row.push_back(Interval(1.0));
    const Interval m(t.mid[v]);
    for (std::uint32_t k = static_cast<std::uint32_t>(row.size()); k <= e;
         ++k) {
      row.push_back(interval::pow_n(m, k));
      ++stats_.pow_evals;
    }
  }
  return row[e];
}

// Extends every power row of `t` to this poly's per-variable maximum
// exponent and returns raw row pointers, so the walk kernels below read
// `rows[i][e]` with no growth checks or stats bookkeeping per multiply.
// The pointer array is engine-owned scratch (engines are single-threaded
// by contract): valid until the next prepare call on this engine, which is
// fine because the kernels never nest.
const Interval* const* RangeEngine::prepare_rows(const Poly& p,
                                                 DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  max_e_.assign(n, 0);
  for (const Term& term : p.terms()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > max_e_[i]) max_e_[i] = e;
    }
  }
  row_ptrs_.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    if (max_e_[i] > 0) (void)power(t, i, max_e_[i]);
    row_ptrs_[i] = t.powers[i].data();
  }
  return row_ptrs_.data();
}

// The seed kernel: identical walk, multiply, and accumulation order as
// Poly::eval_range, with pow_n values read from the table instead of being
// recomputed per term.
Interval RangeEngine::naive_range(const Poly& p, DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  const Interval* const* rows = prepare_rows(p, t);
  Interval s(0.0);
  for (const Term& term : p.terms()) {
    Interval m(term.coeff);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) m *= rows[i][e];
    }
    s += m;
  }
  return s;
}

// Mean-value form: f(x) = f(m) + grad f(xi) . (x - m) for some xi on the
// segment [m, x] subset dom, so f(m) + grad f(dom) . (dom - m) encloses the
// range. Every operation is outward-rounded interval arithmetic, hence the
// result is sound (but not bit-comparable to the seed).
Interval RangeEngine::centered_range(const Poly& p, DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);

  // f(mid), evaluated in point-interval arithmetic for soundness.
  Interval c(0.0);
  for (const Term& term : p.terms()) {
    Interval m(term.coeff);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) m *= mid_power(t, i, e);
    }
    c += m;
  }

  const Interval* const* rows = prepare_rows(p, t);
  for (std::size_t v = 0; v < n; ++v) {
    if (t.dom[v].is_point()) continue;  // zero offset contributes nothing
    // grad_v over the full domain, from the same power table.
    Interval g(0.0);
    bool any = false;
    for (const Term& term : p.terms()) {
      const std::uint32_t ev = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - v))) & mask);
      if (ev == 0) continue;
      const double dc = term.coeff * static_cast<double>(ev);
      if (dc == 0.0) continue;
      Interval m(dc);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t e = static_cast<std::uint32_t>(
            (term.key >> (bits * (n - 1 - i))) & mask);
        if (i == v) --e;
        if (e > 0) m *= rows[i][e];
      }
      g += m;
      any = true;
    }
    if (!any) continue;
    const Interval offset = t.dom[v] - Interval(t.dom[v].mid());
    c += g * offset;
  }
  return c;
}

void RangeEngine::refresh_pin_rows(Pin& pin) {
  DomainTable& t = tables_[pin.slot];
  const std::size_t n = t.dom.size();
  pin.rows.resize(n);
  pin.caps.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    pin.rows[v] = t.powers[v].data();
    pin.caps[v] = t.powers[v].empty()
                      ? 0
                      : static_cast<std::uint32_t>(t.powers[v].size() - 1);
  }
  pin.row_gen = t.row_gen;
}

void RangeEngine::pin_domain(const IVec& dom, std::uint32_t cap_hint) {
  DomainTable& t = table_for(dom);
  t.pinned = true;
  if (t.smemo.empty()) t.smemo.resize(kStreamMemo);
  for (std::size_t v = 0; v < dom.size(); ++v) (void)power(t, v, cap_hint);
  Pin* pin = find_pin(dom);
  if (pin == nullptr) {
    pins_.emplace_back();
    pin = &pins_.back();
    pin->dom = &dom;
  }
  pin->slot = static_cast<std::size_t>(&t - tables_.data());
  refresh_pin_rows(*pin);
  // A re-pin can move to a different table (same address, new bits);
  // recompute which tables still hold a pin.
  for (DomainTable& tab : tables_) tab.pinned = false;
  for (const Pin& pn : pins_) tables_[pn.slot].pinned = true;
}

void RangeEngine::unpin_all() {
  pins_.clear();
  for (DomainTable& t : tables_) t.pinned = false;
}

// Bit-identical twin of naive_range: same term walk, same power values,
// same accumulation order — the rows just come from the pin's cached
// pointers instead of a per-query prepare scan.
Interval RangeEngine::naive_range_pinned(const Poly& p, Pin& pin) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  Interval s(0.0);
  for (const Term& term : p.terms()) {
    Interval m(term.coeff);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) {
        if (e > pin.caps[i]) {
          (void)power(tables_[pin.slot], i, e);
          refresh_pin_rows(pin);
        }
        m *= pin.rows[i][e];
      }
    }
    s += m;
  }
  return s;
}

Interval RangeEngine::eval_range_pinned(const Poly& p, Pin& pin,
                                        const RangeOptions& opt) {
  ++stats_.pin_hits;
  ++stats_.table_reuses;
  DomainTable& t = tables_[pin.slot];
  if (pin.row_gen != t.row_gen) refresh_pin_rows(pin);
  const std::uint32_t kind =
      opt.mode == RangeMode::kSeedIdentical ? 0u : 1u;
  const bool memo = memo_enabled_ &&
                    p.terms().size() >= kStreamMemoMinTerms &&
                    p.terms().size() <= kMaxMemoTerms;
  std::uint64_t h = 0;
  DomainTable::StreamMemoEntry* slot = nullptr;
  if (memo) {
    h = hash_terms_stream(p, kind);
    DomainTable::StreamMemoEntry* set =
        &t.smemo[(h % (kStreamMemo / kStreamMemoWays)) * kStreamMemoWays];
    slot = set;
    for (std::size_t w = 0; w < kStreamMemoWays; ++w) {
      DomainTable::StreamMemoEntry& e = set[w];
      if (e.kind == kind && e.hash == h && terms_equal(e.terms, p.terms())) {
        e.last_use = ++t.smemo_clock;
        ++stats_.memo_hits;
        return e.result;
      }
      if (e.last_use < slot->last_use) slot = &e;
    }
  }
  Interval out = naive_range_pinned(p, pin);
  if (opt.mode != RangeMode::kSeedIdentical) {
    const Interval centered = centered_range(p, t);
    if (pin.row_gen != t.row_gen) refresh_pin_rows(pin);
    const interval::IntersectResult r = interval::intersect(out, centered);
    out = r.ok ? r.value : out;
  }
  if (memo) {
    ++stats_.memo_stores;
    slot->hash = h;
    slot->kind = kind;
    slot->terms = p.terms();
    slot->result = out;
    slot->last_use = ++t.smemo_clock;
  }
  return out;
}

Interval RangeEngine::eval_range(const Poly& p, const IVec& dom,
                                 const RangeOptions& opt) {
  assert(dom.size() == p.nvars());
  ++stats_.queries;
  if (!pins_.empty()) {
    if (Pin* pin = find_pin(dom)) {
      assert(same_bits(*pin->dom, tables_[pin->slot].dom) &&
             "pinned domain mutated without re-pinning");
      return eval_range_pinned(p, *pin, opt);
    }
  }
  DomainTable& t = table_for(dom);
  const std::uint32_t kind =
      opt.mode == RangeMode::kSeedIdentical ? 0u : 1u;
  const bool memo = memo_enabled_ && p.terms().size() <= kMaxMemoTerms;
  std::uint64_t h = 0;
  if (memo) {
    h = hash_terms(p);
    if (const Interval* r = memo_find(t, p, kind, h)) return *r;
  }
  const Interval naive = naive_range(p, t);
  Interval out = naive;
  if (opt.mode != RangeMode::kSeedIdentical) {
    const Interval centered = centered_range(p, t);
    const interval::IntersectResult r = interval::intersect(naive, centered);
    // Two sound enclosures always intersect; the guard only protects
    // against NaN bounds from overflowed coefficients.
    out = r.ok ? r.value : naive;
  }
  if (memo) memo_store(t, p, kind, h, out);
  return out;
}

// Identical to p.derivative(var).eval_range(dom): derivative_into appends
// the surviving terms in key order with coefficient coeff * e_var (skipping
// exact zeros), and eval_range then walks them in that same order — which
// is exactly the filtered walk below.
Interval RangeEngine::derivative_range(const Poly& p, std::size_t var,
                                       const IVec& dom) {
  assert(var < p.nvars());
  assert(dom.size() == p.nvars());
  ++stats_.queries;
  DomainTable& t = table_for(dom);
  const std::uint32_t kind = 2u + static_cast<std::uint32_t>(var);
  const bool memo = memo_enabled_ && p.terms().size() <= kMaxMemoTerms;
  std::uint64_t h = 0;
  if (memo) {
    h = hash_terms(p);
    if (const Interval* r = memo_find(t, p, kind, h)) return *r;
  }
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  const Interval* const* rows = prepare_rows(p, t);
  Interval s(0.0);
  for (const Term& term : p.terms()) {
    const std::uint32_t ev = static_cast<std::uint32_t>(
        (term.key >> (bits * (n - 1 - var))) & mask);
    if (ev == 0) continue;
    const double dc = term.coeff * static_cast<double>(ev);
    if (dc == 0.0) continue;
    Interval m(dc);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (i == var) --e;
      if (e > 0) m *= rows[i][e];
    }
    s += m;
  }
  if (memo) memo_store(t, p, kind, h, s);
  return s;
}

void RangeLanes::bind(const double* lo, const double* hi,
                      std::size_t nvars) {
  nvars_ = nvars;
  dom_lo_.assign(lo, lo + nvars * kWidth);
  dom_hi_.assign(hi, hi + nvars * kWidth);
  powers_.resize(nvars);
  max_e_.assign(nvars, 0);
  for (std::size_t v = 0; v < nvars; ++v) {
    powers_[v].clear();
    // Exponent 0 row: the multiplicative identity in every lane (never
    // multiplied in — naive_range skips e == 0 — but keeps row indexing
    // uniform with RangeEngine's tables).
    powers_[v].resize(2 * kWidth, 1.0);
  }
  m_lo_.resize(kWidth);
  m_hi_.resize(kWidth);
}

void RangeLanes::extend_row(std::size_t v, std::uint32_t e) {
  std::vector<double>& row = powers_[v];
  row.resize((e + 1) * 2 * kWidth);
  for (std::uint32_t k = max_e_[v] + 1; k <= e; ++k) {
    double* blk = row.data() + k * 2 * kWidth;
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      const Interval p =
          interval::pow_n(Interval(dom_lo_[v * kWidth + lane],
                                   dom_hi_[v * kWidth + lane]),
                          k);
      blk[lane] = p.lo();
      blk[kWidth + lane] = p.hi();
    }
  }
  max_e_[v] = e;
}

void RangeLanes::eval(const Poly& p, double* out_lo, double* out_hi) {
  assert(p.nvars() == nvars_);
  const std::size_t n = nvars_;
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  for (const Term& term : p.terms()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > max_e_[i]) extend_row(i, e);
    }
  }
  const interval::lanes::Ops& ops = interval::lanes::active_ops();
  // s = Interval(0.0), accumulated in seed term order per lane.
  for (std::size_t lane = 0; lane < kWidth; ++lane) {
    out_lo[lane] = 0.0;
    out_hi[lane] = 0.0;
  }
  for (const Term& term : p.terms()) {
    // m = Interval(term.coeff), a degenerate interval in every lane.
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      m_lo_[lane] = term.coeff;
      m_hi_[lane] = term.coeff;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) {
        const double* blk = powers_[i].data() + e * 2 * kWidth;
        ops.mul(m_lo_.data(), m_hi_.data(), blk, blk + kWidth, m_lo_.data(),
                m_hi_.data());
      }
    }
    ops.add(out_lo, out_hi, m_lo_.data(), m_hi_.data(), out_lo, out_hi);
  }
}

}  // namespace dwv::poly
