#include "poly/range_engine.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace dwv::poly {

using interval::Interval;
using interval::IVec;

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Word-wise hash of the exact term bytes (key and coefficient bits).
std::uint64_t hash_terms(const Poly& p) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ p.terms().size();
  for (const Term& t : p.terms()) {
    h = mix64(h ^ t.key);
    h = mix64(h ^ std::bit_cast<std::uint64_t>(t.coeff));
  }
  return h;
}

// Exact bit equality of two term vectors (memcmp: Term is a {u64, double}
// POD, and coefficient identity must be by bits, not operator==).
bool terms_equal(const std::vector<Term>& a, const std::vector<Term>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Term)) == 0);
}

// Exact-bits domain identity: bit_cast comparison so signed zeros and NaN
// payloads count as distinct (the table caches pow_n of these exact bits).
bool same_bits(const IVec& a, const IVec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].lo()) !=
            std::bit_cast<std::uint64_t>(b[i].lo()) ||
        std::bit_cast<std::uint64_t>(a[i].hi()) !=
            std::bit_cast<std::uint64_t>(b[i].hi())) {
      return false;
    }
  }
  return true;
}

}  // namespace

RangeEngine::DomainTable& RangeEngine::table_for(const IVec& dom) {
  ++clock_;
  // Fast path: the previous query's table (flowpipe runs alternate between
  // at most two domains, so this hits nearly always).
  if (mru_ < tables_.size() && same_bits(tables_[mru_].dom, dom)) {
    DomainTable& t = tables_[mru_];
    t.last_use = clock_;
    ++stats_.table_reuses;
    return t;
  }
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (same_bits(tables_[i].dom, dom)) {
      mru_ = i;
      tables_[i].last_use = clock_;
      ++stats_.table_reuses;
      return tables_[i];
    }
  }
  ++stats_.table_builds;
  std::size_t slot = 0;
  if (tables_.size() < kMaxTables) {
    slot = tables_.size();
    tables_.emplace_back();
  } else {
    for (std::size_t i = 1; i < tables_.size(); ++i) {
      if (tables_[i].last_use < tables_[slot].last_use) slot = i;
    }
  }
  DomainTable& t = tables_[slot];
  t.dom = dom;
  t.powers.assign(dom.size(), {});
  t.mid.clear();
  t.mid_powers.assign(dom.size(), {});
  t.memo.clear();
  t.last_use = clock_;
  mru_ = slot;
  return t;
}

const Interval* RangeEngine::memo_find(DomainTable& t, const Poly& p,
                                       std::uint32_t kind, std::uint64_t h) {
  for (DomainTable::MemoEntry& e : t.memo) {
    if (e.kind == kind && e.hash == h && terms_equal(e.terms, p.terms())) {
      e.last_use = clock_;
      ++stats_.memo_hits;
      return &e.result;
    }
  }
  return nullptr;
}

void RangeEngine::memo_store(DomainTable& t, const Poly& p,
                             std::uint32_t kind, std::uint64_t h,
                             const Interval& r) {
  ++stats_.memo_stores;
  DomainTable::MemoEntry* slot = nullptr;
  if (t.memo.size() < kMaxMemo) {
    slot = &t.memo.emplace_back();
  } else {
    slot = &t.memo.front();
    for (DomainTable::MemoEntry& e : t.memo) {
      if (e.last_use < slot->last_use) slot = &e;
    }
  }
  slot->hash = h;
  slot->kind = kind;
  slot->terms = p.terms();
  slot->result = r;
  slot->last_use = clock_;
}

const Interval& RangeEngine::power(DomainTable& t, std::size_t v,
                                   std::uint32_t e) {
  std::vector<Interval>& row = t.powers[v];
  if (e >= row.size()) {
    if (row.empty()) row.push_back(Interval(1.0));
    for (std::uint32_t k = static_cast<std::uint32_t>(row.size()); k <= e;
         ++k) {
      row.push_back(interval::pow_n(t.dom[v], k));
      ++stats_.pow_evals;
    }
  }
  return row[e];
}

const Interval& RangeEngine::mid_power(DomainTable& t, std::size_t v,
                                       std::uint32_t e) {
  if (t.mid.size() != t.dom.size()) {
    t.mid.resize(t.dom.size());
    for (std::size_t i = 0; i < t.dom.size(); ++i) t.mid[i] = t.dom[i].mid();
  }
  std::vector<Interval>& row = t.mid_powers[v];
  if (e >= row.size()) {
    if (row.empty()) row.push_back(Interval(1.0));
    const Interval m(t.mid[v]);
    for (std::uint32_t k = static_cast<std::uint32_t>(row.size()); k <= e;
         ++k) {
      row.push_back(interval::pow_n(m, k));
      ++stats_.pow_evals;
    }
  }
  return row[e];
}

// Extends every power row of `t` to this poly's per-variable maximum
// exponent and returns raw row pointers, so the walk kernels below read
// `rows[i][e]` with no growth checks or stats bookkeeping per multiply.
// The pointer array is engine-owned scratch (engines are single-threaded
// by contract): valid until the next prepare call on this engine, which is
// fine because the kernels never nest.
const Interval* const* RangeEngine::prepare_rows(const Poly& p,
                                                 DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  max_e_.assign(n, 0);
  for (const Term& term : p.terms()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > max_e_[i]) max_e_[i] = e;
    }
  }
  row_ptrs_.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    if (max_e_[i] > 0) (void)power(t, i, max_e_[i]);
    row_ptrs_[i] = t.powers[i].data();
  }
  return row_ptrs_.data();
}

// The seed kernel: identical walk, multiply, and accumulation order as
// Poly::eval_range, with pow_n values read from the table instead of being
// recomputed per term.
Interval RangeEngine::naive_range(const Poly& p, DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  const Interval* const* rows = prepare_rows(p, t);
  Interval s(0.0);
  for (const Term& term : p.terms()) {
    Interval m(term.coeff);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) m *= rows[i][e];
    }
    s += m;
  }
  return s;
}

// Mean-value form: f(x) = f(m) + grad f(xi) . (x - m) for some xi on the
// segment [m, x] subset dom, so f(m) + grad f(dom) . (dom - m) encloses the
// range. Every operation is outward-rounded interval arithmetic, hence the
// result is sound (but not bit-comparable to the seed).
Interval RangeEngine::centered_range(const Poly& p, DomainTable& t) {
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);

  // f(mid), evaluated in point-interval arithmetic for soundness.
  Interval c(0.0);
  for (const Term& term : p.terms()) {
    Interval m(term.coeff);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) m *= mid_power(t, i, e);
    }
    c += m;
  }

  const Interval* const* rows = prepare_rows(p, t);
  for (std::size_t v = 0; v < n; ++v) {
    if (t.dom[v].is_point()) continue;  // zero offset contributes nothing
    // grad_v over the full domain, from the same power table.
    Interval g(0.0);
    bool any = false;
    for (const Term& term : p.terms()) {
      const std::uint32_t ev = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - v))) & mask);
      if (ev == 0) continue;
      const double dc = term.coeff * static_cast<double>(ev);
      if (dc == 0.0) continue;
      Interval m(dc);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t e = static_cast<std::uint32_t>(
            (term.key >> (bits * (n - 1 - i))) & mask);
        if (i == v) --e;
        if (e > 0) m *= rows[i][e];
      }
      g += m;
      any = true;
    }
    if (!any) continue;
    const Interval offset = t.dom[v] - Interval(t.dom[v].mid());
    c += g * offset;
  }
  return c;
}

Interval RangeEngine::eval_range(const Poly& p, const IVec& dom,
                                 const RangeOptions& opt) {
  assert(dom.size() == p.nvars());
  ++stats_.queries;
  DomainTable& t = table_for(dom);
  const std::uint32_t kind =
      opt.mode == RangeMode::kSeedIdentical ? 0u : 1u;
  const bool memo = memo_enabled_ && p.terms().size() <= kMaxMemoTerms;
  std::uint64_t h = 0;
  if (memo) {
    h = hash_terms(p);
    if (const Interval* r = memo_find(t, p, kind, h)) return *r;
  }
  const Interval naive = naive_range(p, t);
  Interval out = naive;
  if (opt.mode != RangeMode::kSeedIdentical) {
    const Interval centered = centered_range(p, t);
    const interval::IntersectResult r = interval::intersect(naive, centered);
    // Two sound enclosures always intersect; the guard only protects
    // against NaN bounds from overflowed coefficients.
    out = r.ok ? r.value : naive;
  }
  if (memo) memo_store(t, p, kind, h, out);
  return out;
}

// Identical to p.derivative(var).eval_range(dom): derivative_into appends
// the surviving terms in key order with coefficient coeff * e_var (skipping
// exact zeros), and eval_range then walks them in that same order — which
// is exactly the filtered walk below.
Interval RangeEngine::derivative_range(const Poly& p, std::size_t var,
                                       const IVec& dom) {
  assert(var < p.nvars());
  assert(dom.size() == p.nvars());
  ++stats_.queries;
  DomainTable& t = table_for(dom);
  const std::uint32_t kind = 2u + static_cast<std::uint32_t>(var);
  const bool memo = memo_enabled_ && p.terms().size() <= kMaxMemoTerms;
  std::uint64_t h = 0;
  if (memo) {
    h = hash_terms(p);
    if (const Interval* r = memo_find(t, p, kind, h)) return *r;
  }
  const std::size_t n = p.nvars();
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  const Interval* const* rows = prepare_rows(p, t);
  Interval s(0.0);
  for (const Term& term : p.terms()) {
    const std::uint32_t ev = static_cast<std::uint32_t>(
        (term.key >> (bits * (n - 1 - var))) & mask);
    if (ev == 0) continue;
    const double dc = term.coeff * static_cast<double>(ev);
    if (dc == 0.0) continue;
    Interval m(dc);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (i == var) --e;
      if (e > 0) m *= rows[i][e];
    }
    s += m;
  }
  if (memo) memo_store(t, p, kind, h, s);
  return s;
}

void RangeLanes::bind(const double* lo, const double* hi,
                      std::size_t nvars) {
  nvars_ = nvars;
  dom_lo_.assign(lo, lo + nvars * kWidth);
  dom_hi_.assign(hi, hi + nvars * kWidth);
  powers_.resize(nvars);
  max_e_.assign(nvars, 0);
  for (std::size_t v = 0; v < nvars; ++v) {
    powers_[v].clear();
    // Exponent 0 row: the multiplicative identity in every lane (never
    // multiplied in — naive_range skips e == 0 — but keeps row indexing
    // uniform with RangeEngine's tables).
    powers_[v].resize(2 * kWidth, 1.0);
  }
  m_lo_.resize(kWidth);
  m_hi_.resize(kWidth);
}

void RangeLanes::extend_row(std::size_t v, std::uint32_t e) {
  std::vector<double>& row = powers_[v];
  row.resize((e + 1) * 2 * kWidth);
  for (std::uint32_t k = max_e_[v] + 1; k <= e; ++k) {
    double* blk = row.data() + k * 2 * kWidth;
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      const Interval p =
          interval::pow_n(Interval(dom_lo_[v * kWidth + lane],
                                   dom_hi_[v * kWidth + lane]),
                          k);
      blk[lane] = p.lo();
      blk[kWidth + lane] = p.hi();
    }
  }
  max_e_[v] = e;
}

void RangeLanes::eval(const Poly& p, double* out_lo, double* out_hi) {
  assert(p.nvars() == nvars_);
  const std::size_t n = nvars_;
  const std::uint32_t bits = key_bits(n);
  const std::uint64_t mask = key_field_mask(n);
  for (const Term& term : p.terms()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > max_e_[i]) extend_row(i, e);
    }
  }
  const interval::lanes::Ops& ops = interval::lanes::active_ops();
  // s = Interval(0.0), accumulated in seed term order per lane.
  for (std::size_t lane = 0; lane < kWidth; ++lane) {
    out_lo[lane] = 0.0;
    out_hi[lane] = 0.0;
  }
  for (const Term& term : p.terms()) {
    // m = Interval(term.coeff), a degenerate interval in every lane.
    for (std::size_t lane = 0; lane < kWidth; ++lane) {
      m_lo_[lane] = term.coeff;
      m_hi_[lane] = term.coeff;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (term.key >> (bits * (n - 1 - i))) & mask);
      if (e > 0) {
        const double* blk = powers_[i].data() + e * 2 * kWidth;
        ops.mul(m_lo_.data(), m_hi_.data(), blk, blk + kWidth, m_lo_.data(),
                m_hi_.data());
      }
    }
    ops.add(out_lo, out_hi, m_lo_.data(), m_hi_.data(), out_lo, out_hi);
  }
}

}  // namespace dwv::poly
