// Reference sparse polynomial: the original std::map-based implementation,
// retained verbatim as the differential-testing oracle for the packed
// kernel in poly.hpp. Every operation here iterates the map in exponent
// lex order; the packed kernel must reproduce these results bit for bit
// (tests/test_poly_packed.cpp). Not used by any production code path.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "interval/ivec.hpp"
#include "linalg/vec.hpp"
#include "poly/poly.hpp"

namespace dwv::poly::ref {

/// Sparse polynomial in `nvars` real variables (map-based reference).
class RefPoly {
 public:
  RefPoly() = default;
  explicit RefPoly(std::size_t nvars) : nvars_(nvars) {}

  /// The constant polynomial c.
  static RefPoly constant(std::size_t nvars, double c);
  /// The coordinate polynomial x_i.
  static RefPoly variable(std::size_t nvars, std::size_t i);

  std::size_t nvars() const { return nvars_; }
  bool is_zero() const { return terms_.empty(); }
  std::size_t term_count() const { return terms_.size(); }
  std::uint32_t degree() const;

  /// Coefficient of a monomial (0 when absent).
  double coeff(const Exponents& e) const;
  /// Adds `c` to the coefficient of monomial `e`; drops resulting zeros.
  void add_term(const Exponents& e, double c);
  /// The constant term.
  double constant_term() const;
  /// Direct map assignment (test/conversion plumbing; keeps zeros).
  void set_term_raw(const Exponents& e, double c) { terms_[e] = c; }

  const std::map<Exponents, double>& terms() const { return terms_; }

  RefPoly& operator+=(const RefPoly& o);
  RefPoly& operator-=(const RefPoly& o);
  RefPoly& operator*=(double s);
  friend RefPoly operator+(RefPoly a, const RefPoly& b) { return a += b; }
  friend RefPoly operator-(RefPoly a, const RefPoly& b) { return a -= b; }
  friend RefPoly operator*(RefPoly a, double s) { return a *= s; }
  friend RefPoly operator*(double s, RefPoly a) { return a *= s; }
  friend RefPoly operator-(RefPoly a) { return a *= -1.0; }
  friend RefPoly operator*(const RefPoly& a, const RefPoly& b);

  /// Point evaluation.
  double eval(const linalg::Vec& x) const;

  /// Sound interval enclosure of the range over box `dom`.
  interval::Interval eval_range(const interval::IVec& dom) const;

  /// Substitutes polynomial `subs[i]` for variable i (composition).
  RefPoly compose(const std::vector<RefPoly>& subs) const;

  /// Partial derivative with respect to variable i.
  RefPoly derivative(std::size_t i) const;

  /// Splits into (kept, dropped) by total degree.
  std::pair<RefPoly, RefPoly> split_by_degree(std::uint32_t max_degree) const;

  /// Removes terms with |coeff| <= tol, returning the dropped part.
  RefPoly prune_small(double tol);

  double max_abs_coeff() const;

  friend std::ostream& operator<<(std::ostream& os, const RefPoly& p);

 private:
  std::size_t nvars_ = 0;
  std::map<Exponents, double> terms_;
};

/// Power of a polynomial by repeated squaring.
RefPoly pow(const RefPoly& base, std::uint32_t n);

/// Converts a reference polynomial to the packed representation.
Poly to_packed(const RefPoly& p);
/// Converts a packed polynomial to the reference representation. Copies
/// terms verbatim (including any persisted zero coefficients).
RefPoly to_ref(const Poly& p);

}  // namespace dwv::poly::ref
