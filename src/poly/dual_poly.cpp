#include "poly/dual_poly.hpp"

#include <algorithm>
#include <cassert>

namespace dwv::poly {

using interval::DualInterval;
using interval::Interval;

double coeff_of_key(const Poly& p, std::uint64_t key) {
  const std::vector<Term>& t = p.terms();
  auto it = std::lower_bound(
      t.begin(), t.end(), key,
      [](const Term& a, std::uint64_t k) { return a.key < k; });
  return (it != t.end() && it->key == key) ? it->coeff : 0.0;
}

void tangent_only_keys(const DualPoly& p, std::vector<std::uint64_t>& out) {
  out.clear();
  for (const Poly& t : p.tan) {
    for (const Term& term : t.terms()) out.push_back(term.key);
  }
  if (out.empty()) return;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](std::uint64_t k) {
                             return coeff_of_key(p.val, k) != 0.0;
                           }),
            out.end());
}

void dual_add_into(const DualPoly& a, const DualPoly& b, DualPoly& out) {
  assert(a.dirs() == b.dirs());
  out.tan.resize(a.dirs());
  Poly::add_into(a.val, b.val, out.val);
  for (std::size_t k = 0; k < a.dirs(); ++k) {
    Poly::add_into(a.tan[k], b.tan[k], out.tan[k]);
  }
}

void dual_sub_into(const DualPoly& a, const DualPoly& b, DualPoly& out) {
  assert(a.dirs() == b.dirs());
  out.tan.resize(a.dirs());
  Poly::sub_into(a.val, b.val, out.val);
  for (std::size_t k = 0; k < a.dirs(); ++k) {
    Poly::sub_into(a.tan[k], b.tan[k], out.tan[k]);
  }
}

void dual_mul_into(const DualPoly& a, const DualPoly& b, DualPoly& out,
                   DualPolyScratch& s) {
  assert(a.dirs() == b.dirs());
  out.tan.resize(a.dirs());
  Poly::mul_into(a.val, b.val, out.val, s.ps);
  for (std::size_t k = 0; k < a.dirs(); ++k) {
    Poly::mul_into(a.tan[k], b.val, s.t1, s.ps);
    Poly::mul_into(a.val, b.tan[k], s.t2, s.ps);
    Poly::add_into(s.t1, s.t2, out.tan[k]);
  }
}

DualInterval dual_range(const DualPoly& p, const interval::IVec& dom,
                        DualPolyScratch& s) {
  const std::size_t nvars = p.val.nvars();
  const std::size_t nd = p.dirs();
  assert(dom.size() == nvars);
  const std::uint32_t bits = key_bits(nvars);
  const std::uint64_t mask = key_field_mask(nvars);

  // Value-present terms: the exact Poly::eval_range loop on the value
  // channel, with the coefficient's tangents threaded through the same
  // endpoint selections.
  DualInterval acc = DualInterval::constant(Interval(0.0), nd);
  for (const Term& t : p.val.terms()) {
    DualInterval m = DualInterval::constant(Interval(t.coeff), nd);
    for (std::size_t k = 0; k < nd; ++k) {
      const double dc = coeff_of_key(p.tan[k], t.key);
      m.dlo[k] = dc;
      m.dhi[k] = dc;
    }
    for (std::size_t i = 0; i < nvars; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (t.key >> (bits * (nvars - 1 - i))) & mask);
      if (e > 0) m = dual_mul_const(m, interval::pow_n(dom[i], e));
    }
    acc = dual_add(acc, m);
  }

  // Tangent-only keys: the value channel never sees them (bit-identity),
  // both endpoints pick up dc_k * mid2(K) with K the monomial's interval
  // product chain (central-difference limit, see header).
  tangent_only_keys(p, s.keys);
  for (std::uint64_t key : s.keys) {
    Interval kprod(1.0);
    for (std::size_t i = 0; i < nvars; ++i) {
      const std::uint32_t e = static_cast<std::uint32_t>(
          (key >> (bits * (nvars - 1 - i))) & mask);
      if (e > 0) kprod *= interval::pow_n(dom[i], e);
    }
    const double m2 = interval::mid2(kprod);
    for (std::size_t k = 0; k < nd; ++k) {
      const double dc = coeff_of_key(p.tan[k], key);
      if (dc == 0.0) continue;
      acc.dlo[k] += dc * m2;
      acc.dhi[k] += dc * m2;
    }
  }
  return acc;
}

}  // namespace dwv::poly
