#include "poly/poly_ref.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dwv::poly::ref {

RefPoly RefPoly::constant(std::size_t nvars, double c) {
  RefPoly p(nvars);
  if (c != 0.0) p.terms_[Exponents(nvars, 0)] = c;
  return p;
}

RefPoly RefPoly::variable(std::size_t nvars, std::size_t i) {
  assert(i < nvars);
  RefPoly p(nvars);
  Exponents e(nvars, 0);
  e[i] = 1;
  p.terms_[e] = 1.0;
  return p;
}

std::uint32_t RefPoly::degree() const {
  std::uint32_t d = 0;
  for (const auto& [e, c] : terms_) d = std::max(d, total_degree(e));
  return d;
}

double RefPoly::coeff(const Exponents& e) const {
  const auto it = terms_.find(e);
  return it == terms_.end() ? 0.0 : it->second;
}

void RefPoly::add_term(const Exponents& e, double c) {
  assert(e.size() == nvars_);
  if (c == 0.0) return;
  auto [it, inserted] = terms_.emplace(e, c);
  if (!inserted) {
    it->second += c;
    if (it->second == 0.0) terms_.erase(it);
  }
}

double RefPoly::constant_term() const { return coeff(Exponents(nvars_, 0)); }

RefPoly& RefPoly::operator+=(const RefPoly& o) {
  assert(nvars_ == o.nvars_ || is_zero() || o.is_zero());
  if (nvars_ == 0) nvars_ = o.nvars_;
  for (const auto& [e, c] : o.terms_) add_term(e, c);
  return *this;
}

RefPoly& RefPoly::operator-=(const RefPoly& o) {
  assert(nvars_ == o.nvars_ || is_zero() || o.is_zero());
  if (nvars_ == 0) nvars_ = o.nvars_;
  for (const auto& [e, c] : o.terms_) add_term(e, -c);
  return *this;
}

RefPoly& RefPoly::operator*=(double s) {
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [e, c] : terms_) c *= s;
  return *this;
}

RefPoly operator*(const RefPoly& a, const RefPoly& b) {
  assert(a.nvars_ == b.nvars_ || a.is_zero() || b.is_zero());
  RefPoly r(std::max(a.nvars_, b.nvars_));
  for (const auto& [ea, ca] : a.terms_) {
    for (const auto& [eb, cb] : b.terms_) {
      Exponents e(ea.size());
      for (std::size_t i = 0; i < e.size(); ++i) e[i] = ea[i] + eb[i];
      r.add_term(e, ca * cb);
    }
  }
  return r;
}

double RefPoly::eval(const linalg::Vec& x) const {
  assert(x.size() == nvars_);
  double s = 0.0;
  for (const auto& [e, c] : terms_) {
    double m = c;
    for (std::size_t i = 0; i < nvars_; ++i) {
      for (std::uint32_t k = 0; k < e[i]; ++k) m *= x[i];
    }
    s += m;
  }
  return s;
}

interval::Interval RefPoly::eval_range(const interval::IVec& dom) const {
  assert(dom.size() == nvars_);
  interval::Interval s(0.0);
  for (const auto& [e, c] : terms_) {
    interval::Interval m(c);
    for (std::size_t i = 0; i < nvars_; ++i) {
      if (e[i] > 0) m *= interval::pow_n(dom[i], e[i]);
    }
    s += m;
  }
  return s;
}

RefPoly RefPoly::compose(const std::vector<RefPoly>& subs) const {
  assert(subs.size() == nvars_);
  const std::size_t out_vars = subs.empty() ? 0 : subs[0].nvars();
  RefPoly r(out_vars);
  for (const auto& [e, c] : terms_) {
    RefPoly m = RefPoly::constant(out_vars, c);
    for (std::size_t i = 0; i < nvars_; ++i) {
      if (e[i] > 0) m = m * pow(subs[i], e[i]);
    }
    r += m;
  }
  return r;
}

RefPoly RefPoly::derivative(std::size_t i) const {
  assert(i < nvars_);
  RefPoly r(nvars_);
  for (const auto& [e, c] : terms_) {
    if (e[i] == 0) continue;
    Exponents d = e;
    d[i] -= 1;
    r.add_term(d, c * static_cast<double>(e[i]));
  }
  return r;
}

std::pair<RefPoly, RefPoly> RefPoly::split_by_degree(
    std::uint32_t max_degree) const {
  RefPoly kept(nvars_);
  RefPoly dropped(nvars_);
  for (const auto& [e, c] : terms_) {
    if (total_degree(e) <= max_degree)
      kept.terms_[e] = c;
    else
      dropped.terms_[e] = c;
  }
  return {kept, dropped};
}

RefPoly RefPoly::prune_small(double tol) {
  RefPoly dropped(nvars_);
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol && total_degree(it->first) > 0) {
      dropped.terms_[it->first] = it->second;
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

double RefPoly::max_abs_coeff() const {
  double m = 0.0;
  for (const auto& [e, c] : terms_) m = std::max(m, std::abs(c));
  return m;
}

std::ostream& operator<<(std::ostream& os, const RefPoly& p) {
  if (p.terms_.empty()) return os << '0';
  bool first = true;
  for (const auto& [e, c] : p.terms_) {
    if (!first) os << (c >= 0 ? " + " : " - ");
    else if (c < 0) os << '-';
    first = false;
    os << std::abs(c);
    for (std::size_t i = 0; i < e.size(); ++i) {
      if (e[i] == 0) continue;
      os << "*x" << i;
      if (e[i] > 1) os << '^' << e[i];
    }
  }
  return os;
}

RefPoly pow(const RefPoly& base, std::uint32_t n) {
  RefPoly r = RefPoly::constant(base.nvars(), 1.0);
  RefPoly b = base;
  std::uint32_t k = n;
  while (k > 0) {
    if (k & 1u) r = r * b;
    k >>= 1u;
    if (k) b = b * b;
  }
  return r;
}

Poly to_packed(const RefPoly& p) {
  Poly out(p.nvars());
  // Map iteration is lex order == ascending packed-key order.
  for (const auto& [e, c] : p.terms()) out.push_term(encode_key(e), c);
  return out;
}

RefPoly to_ref(const Poly& p) {
  RefPoly out(p.nvars());
  Exponents e;
  for (const auto& [k, c] : p.terms()) {
    decode_key(k, p.nvars(), e);
    out.set_term_raw(e, c);
  }
  return out;
}

}  // namespace dwv::poly::ref
