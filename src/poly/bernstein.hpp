// Bernstein-polynomial machinery:
//  * range bounding of univariate polynomials via Bernstein coefficients,
//  * multivariate Bernstein approximation of black-box Lipschitz functions
//    (the core of the ReachNN-style neural-network abstraction).
#pragma once

#include <functional>
#include <vector>

#include "geom/box.hpp"
#include "poly/poly.hpp"

namespace dwv::poly {

/// Binomial coefficient C(n, k) as double. Every finite return value is
/// EXACT: the running product is guarded against leaving the
/// exactly-representable integer range (every intermediate stays below
/// 2^53), and +infinity is returned instead of a silently rounded value
/// once C(n, k) cannot be represented exactly.
double binomial(std::uint32_t n, std::uint32_t k);

/// Rows 0..n of Pascal's triangle, memoized per thread and grown on
/// demand; entry [i][j] equals binomial(i, j) bit for bit (j <= i). Backs
/// the Bernstein conversion loops and RangeEngine clients so inner loops
/// stop recomputing O(k) binomial products.
const std::vector<std::vector<double>>& binomial_rows(std::uint32_t n);

/// Sound range enclosure of a univariate polynomial over [lo, hi] using the
/// Bernstein coefficient enclosure property (tighter than naive interval
/// evaluation for high-degree terms).
interval::Interval bernstein_range_1d(const Poly& p, double lo, double hi);

/// Result of approximating f on a box by a Bernstein polynomial.
struct BernsteinApprox {
  /// Polynomial in normalized variables t in [0,1]^n (power basis).
  Poly poly_unit;
  /// Sound remainder bound: |poly(t(x)) - f(x)| <= remainder for x in box.
  double remainder = 0.0;
};

/// Degree-`deg[i]`-per-dimension Bernstein approximation of a scalar
/// function `f` over `dom`. `lipschitz[i]` must bound |df/dx_i| over `dom`;
/// the Lipschitz-based remainder makes the enclosure sound (the ReachNN
/// error bound). Samples f at the (deg+1)^n grid points.
BernsteinApprox bernstein_approximate(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const std::vector<std::uint32_t>& deg,
    const std::vector<double>& lipschitz);

/// Empirical (unsound) remainder estimate by dense sampling; used in tests
/// to check the Lipschitz bound is indeed conservative.
double bernstein_sampled_error(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const BernsteinApprox& approx, std::size_t samples_per_dim);

/// SOUND sampled remainder (the ReachNN-style "novel sampling method"):
///   |B - f| <= max_{grid} |B - f|  +  sum_i  L_i^diff * cell_radius_i,
/// where L_i^diff bounds |d(B - f)/dx_i| from (a) the exact interval range
/// of dB/dx_i and (b) a caller-provided interval enclosure of df/dx_i over
/// the box. Scales as O(width^2) for smooth f, vastly tighter than the
/// pure Lipschitz bound. `df_range[i]` must enclose df/dx_i over `dom`.
/// `poly_centered` is the fit expressed in centered coordinates
/// c = (x - mid) / width in [-1/2, 1/2]^n (well-conditioned basis).
double bernstein_sampled_remainder(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const Poly& poly_centered,
    const std::vector<interval::Interval>& df_range,
    std::size_t samples_per_dim);

}  // namespace dwv::poly
