#include "poly/bernstein.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "poly/range_engine.hpp"

namespace dwv::poly {

double binomial(std::uint32_t n, std::uint32_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  // Exact 128-bit integer evaluation: r * (n - i) is always divisible by
  // (i + 1) (the running value is C(n, i + 1)), and with r < 2^53 the
  // product stays below 2^85, far from overflow. The moment the exact
  // value leaves the range doubles represent exactly we return +infinity
  // instead of a silently rounded coefficient.
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  unsigned __int128 r = 1;
  for (std::uint32_t i = 0; i < k; ++i) {
    r = r * (n - i) / (i + 1);
    if (r >= static_cast<unsigned __int128>(kExactLimit)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return static_cast<double>(r);
}

const std::vector<std::vector<double>>& binomial_rows(std::uint32_t n) {
  thread_local std::vector<std::vector<double>> tri;
  while (tri.size() <= n) {
    const std::uint32_t i = static_cast<std::uint32_t>(tri.size());
    std::vector<double> row(i + 1);
    for (std::uint32_t j = 0; j <= i; ++j) row[j] = binomial(i, j);
    tri.push_back(std::move(row));
  }
  return tri;
}

interval::Interval bernstein_range_1d(const Poly& p, double lo, double hi) {
  assert(p.nvars() == 1);
  const std::uint32_t d = p.degree();
  // Power-basis coefficients of q(t) = p(lo + (hi - lo) t), t in [0, 1].
  std::vector<double> a(d + 1, 0.0);
  const double w = hi - lo;
  // Hoisted row tables: the binomial products and endpoint powers used to
  // be recomputed inside the double loops below; each value is identical
  // to the per-iteration computation it replaces.
  const std::vector<std::vector<double>>& binom = binomial_rows(d);
  std::vector<double> lo_pow(d + 1);
  std::vector<double> w_pow(d + 1);
  for (std::uint32_t j = 0; j <= d; ++j) {
    lo_pow[j] = std::pow(lo, static_cast<int>(j));
    w_pow[j] = std::pow(w, static_cast<int>(j));
  }
  for (const auto& [key, c] : p.terms()) {
    const std::uint32_t k = key_exp(key, 1, 0);
    // (lo + w t)^k = sum_j C(k, j) lo^(k-j) w^j t^j.
    for (std::uint32_t j = 0; j <= k; ++j) {
      a[j] += c * binom[k][j] * lo_pow[k - j] * w_pow[j];
    }
  }
  // Bernstein coefficients b_i = sum_j (C(i,j)/C(d,j)) a_j.
  double bmin = a[0];
  double bmax = a[0];
  for (std::uint32_t i = 0; i <= d; ++i) {
    double b = 0.0;
    for (std::uint32_t j = 0; j <= std::min(i, d); ++j) {
      b += binom[i][j] / binom[d][j] * a[j];
    }
    bmin = std::min(bmin, b);
    bmax = std::max(bmax, b);
  }
  return interval::outward(interval::Interval(bmin, bmax));
}

namespace {

// 1-D Bernstein basis polynomial C(d,k) t^k (1-t)^(d-k) expanded in the
// power basis as a univariate Poly.
Poly bernstein_basis_1d(std::uint32_t d, std::uint32_t k) {
  Poly p(1);
  const std::vector<std::vector<double>>& binom = binomial_rows(d);
  const double cdk = binom[d][k];
  for (std::uint32_t j = 0; j <= d - k; ++j) {
    Exponents e{k + j};
    const double sign = (j % 2 == 0) ? 1.0 : -1.0;
    p.add_term(e, cdk * binom[d - k][j] * sign);
  }
  return p;
}

}  // namespace

BernsteinApprox bernstein_approximate(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const std::vector<std::uint32_t>& deg,
    const std::vector<double>& lipschitz) {
  const std::size_t n = dom.dim();
  assert(deg.size() == n && lipschitz.size() == n);

  // Pre-expand each dimension's basis polynomials as n-variate polynomials.
  std::vector<std::vector<Poly>> basis(n);
  for (std::size_t i = 0; i < n; ++i) {
    basis[i].reserve(deg[i] + 1);
    for (std::uint32_t k = 0; k <= deg[i]; ++k) {
      const Poly b1 = bernstein_basis_1d(deg[i], k);
      // Lift x0 -> x_i in n variables.
      Poly lift(n);
      for (const auto& [key, c] : b1.terms()) {
        Exponents en(n, 0);
        en[i] = key_exp(key, 1, 0);
        lift.add_term(en, c);
      }
      basis[i].push_back(std::move(lift));
    }
  }

  // Iterate over the sample grid k in prod(deg_i + 1).
  Poly result(n);
  std::vector<std::uint32_t> k(n, 0);
  while (true) {
    linalg::Vec x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = deg[i] == 0
                           ? 0.5
                           : static_cast<double>(k[i]) /
                                 static_cast<double>(deg[i]);
      x[i] = dom[i].lo() + t * dom[i].width();
    }
    Poly term = Poly::constant(n, f(x));
    for (std::size_t i = 0; i < n; ++i) term = term * basis[i][k[i]];
    result += term;

    std::size_t i = 0;
    for (; i < n; ++i) {
      if (++k[i] <= deg[i]) break;
      k[i] = 0;
    }
    if (i == n) break;
  }

  // ReachNN-style Lipschitz remainder: in normalized coordinates the
  // per-dimension Lipschitz constant is L_i * width_i, and
  // |B_d(f) - f| <= 0.5 * sqrt(sum_i (L_i w_i)^2 / d_i).
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (deg[i] == 0) {
      // Constant in this dimension: full variation enters the remainder.
      s += std::pow(lipschitz[i] * dom[i].width(), 2);
    } else {
      s += std::pow(lipschitz[i] * dom[i].width(), 2) /
           static_cast<double>(deg[i]);
    }
  }
  return {std::move(result), 0.5 * std::sqrt(s)};
}

double bernstein_sampled_error(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const BernsteinApprox& approx, std::size_t samples_per_dim) {
  const std::size_t n = dom.dim();
  std::vector<std::size_t> k(n, 0);
  double worst = 0.0;
  while (true) {
    linalg::Vec x(n);
    linalg::Vec t(n);
    for (std::size_t i = 0; i < n; ++i) {
      t[i] = static_cast<double>(k[i]) /
             static_cast<double>(samples_per_dim - 1);
      x[i] = dom[i].lo() + t[i] * dom[i].width();
    }
    worst = std::max(worst, std::abs(approx.poly_unit.eval(t) - f(x)));
    std::size_t i = 0;
    for (; i < n; ++i) {
      if (++k[i] < samples_per_dim) break;
      k[i] = 0;
    }
    if (i == n) break;
  }
  return worst;
}

}  // namespace dwv::poly

namespace dwv::poly {

double bernstein_sampled_remainder(
    const std::function<double(const linalg::Vec&)>& f, const geom::Box& dom,
    const Poly& poly_centered,
    const std::vector<interval::Interval>& df_range,
    std::size_t samples_per_dim) {
  const std::size_t n = dom.dim();
  assert(df_range.size() == n && samples_per_dim >= 2);

  // (a) Max deviation on the sample grid (c = t - 1/2 coordinates).
  double eps_grid = 0.0;
  {
    std::vector<std::size_t> k(n, 0);
    while (true) {
      linalg::Vec x(n);
      linalg::Vec c(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(k[i]) /
                         static_cast<double>(samples_per_dim - 1);
        c[i] = t - 0.5;
        x[i] = dom[i].lo() + t * dom[i].width();
      }
      eps_grid = std::max(eps_grid, std::abs(poly_centered.eval(c) - f(x)));
      std::size_t i = 0;
      for (; i < n; ++i) {
        if (++k[i] < samples_per_dim) break;
        k[i] = 0;
      }
      if (i == n) break;
    }
  }

  // (b) Derivative-gap correction: between grid points, |B - f| can grow by
  // at most sum_i sup|d(B - f)/dx_i| * cell_radius_i. The Bernstein side is
  // an exact polynomial-range bound (well-conditioned in the centered
  // basis); the network side comes from df_range.
  const interval::IVec half(n, interval::Interval(-0.5, 0.5));
  thread_local RangeEngine engine;  // amortizes the [-1/2,1/2]^n tables
  double correction = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = dom[i].width();
    if (w <= 0.0) continue;
    // dB/dx_i = (1/w_i) dB/dc_i.
    const interval::Interval db =
        engine.derivative_range(poly_centered, i, half) * (1.0 / w);
    const interval::Interval df = df_range[i];
    // sup |u - v| over u in db, v in df.
    const double gap =
        std::max(db.hi() - df.lo(), df.hi() - db.lo());
    const double cell_radius =
        0.5 * w / static_cast<double>(samples_per_dim - 1);
    correction += std::max(0.0, gap) * cell_radius;
  }
  return eps_grid + correction;
}

}  // namespace dwv::poly
