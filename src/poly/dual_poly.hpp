// Forward-mode tangent bundle over Poly: a value polynomial plus one
// tangent polynomial per parameter direction, all sharing the packed-
// monomial representation and the *_into scratch discipline.
//
// The value channel of every dual operation performs EXACTLY the scalar
// Poly operation (same kernels, same term order), so dual pipelines keep
// their value bits identical to the scalar pipeline. Tangent polynomials
// ride along through the linear kernels (add/sub/mul are exact on the
// polynomial channel: d(ab) = (da)b + a(db) with the same mul_into code).
//
// Tangent-only keys — monomials whose value coefficient is exactly zero
// but whose theta-derivative is not (a controller gain currently at 0,
// a cancelled product term) — are first-class: they stay in the tangent
// polynomials (a +-h perturbation re-introduces the term with coefficient
// h*dc, far above the sweep cutoff, so perturbed runs keep it), and range
// queries account for them with the central-difference limit derived in
// dual_interval.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "interval/dual_interval.hpp"
#include "interval/ivec.hpp"
#include "poly/poly.hpp"

namespace dwv::poly {

struct DualPoly {
  Poly val;
  /// tan[k] = d(val)/d(theta_k); tan.size() == direction count.
  std::vector<Poly> tan;

  std::size_t dirs() const { return tan.size(); }

  /// Clears both channels and re-targets nvars/dirs (capacity retained).
  void reset(std::size_t nvars, std::size_t dirs) {
    val.reset(nvars);
    tan.resize(dirs);
    for (Poly& t : tan) t.reset(nvars);
  }

  /// Value-only initialization (all tangents zero).
  static DualPoly constant_like(const Poly& v, std::size_t dirs) {
    DualPoly r;
    r.val = v;
    r.tan.assign(dirs, Poly(v.nvars()));
    return r;
  }
};

/// Scratch for the dual poly/TM kernels (the dual analogue of PolyScratch;
/// see DualTmScratch for ownership rules).
struct DualPolyScratch {
  PolyScratch ps;
  Poly t1;
  Poly t2;
  std::vector<std::uint64_t> keys;  ///< tangent-only key enumeration
};

/// Coefficient of `key` in `p` (0 when absent). Binary search over the
/// sorted term vector.
double coeff_of_key(const Poly& p, std::uint64_t key);

/// Collects, sorted ascending, every key present in some tangent channel
/// of `p` but absent from the value channel.
void tangent_only_keys(const DualPoly& p, std::vector<std::uint64_t>& out);

/// out = a + b per channel (Poly::add_into; out must not alias a or b).
void dual_add_into(const DualPoly& a, const DualPoly& b, DualPoly& out);
/// out = a - b per channel.
void dual_sub_into(const DualPoly& a, const DualPoly& b, DualPoly& out);
/// out = a * b: value via Poly::mul_into, tangents by the product rule
/// tan_k = a.tan_k * b.val + a.val * b.tan_k (same mul kernel).
void dual_mul_into(const DualPoly& a, const DualPoly& b, DualPoly& out,
                   DualPolyScratch& s);

/// Forward-mode analogue of Poly::eval_range over domain `dom`: the value
/// channel replicates Poly::eval_range bit for bit (which RangeEngine's
/// kSeedIdentical mode also reproduces, so this matches TmEnv::poly_range
/// in the default mode); the tangent channel differentiates it.
///
/// Value-present terms chain dual multiplications whose selection follows
/// the actual endpoint comparisons. Tangent-only keys contribute
/// dc_k * mid2(K) to both endpoints, where K is the monomial's interval
/// product chain — the central-difference limit of re-introducing the term
/// with coefficient +-h*dc (see dual_interval.hpp).
interval::DualInterval dual_range(const DualPoly& p,
                                  const interval::IVec& dom,
                                  DualPolyScratch& s);

}  // namespace dwv::poly
