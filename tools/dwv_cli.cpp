// dwv — command-line front-end for the design-while-verify pipeline.
//
//   dwv learn    <benchmark> [options]   run Algorithm 1 and save the result
//   dwv verify   <benchmark> [options]   verify a saved controller
//   dwv search   <benchmark> [options]   sharded/checkpointable X_I search
//                                        (Algorithm 2 at scale; DESIGN.md §16)
//   dwv simulate <benchmark> [options]   Monte-Carlo SC/GR of a controller
//   dwv cache-compact --cache-dir DIR    rewrite a persistent cache to its
//                                        live records (offline)
//   dwv list                             list the built-in benchmarks
//                                        (name, dimension, X0, goal box)
//
// Benchmarks: acc, oscillator, sys3d, b1, b2, b3, b4.
// Common options:
//   --verifier linear|polar|reachnn|interval   (default: linear for acc,
//                                               polar otherwise)
//   --metric W|G              feedback metric for learning (default G)
//   --controller FILE         controller file (learn: output; others: input)
//   --seed N                  RNG seed (default 1)
//   --iters N                 Algorithm-1 iteration budget
//   --samples N               Monte-Carlo sample count (default 500)
//   --threads N               concurrent verifier calls (SPSA probes,
//                             initial-set refinement); 0 = hardware
//                             concurrency (default), 1 = serial. Results
//                             are bit-identical across thread counts.
//   --batch K                 lane-batch width for grouped verifier calls
//                             (SPSA probe pairs, X_I refinement cells);
//                             0 = auto (the SIMD lane width, default),
//                             1 = one call at a time. Results are
//                             bit-identical at any K.
//   --no-batch                shorthand for --batch 1 (the pre-batching
//                             sequential path)
//   --cache                   memoize verifier calls across iterations
//                             (bit-identical results, fewer re-computations)
//   --cache-stats             print cache hit/miss/eviction counters and
//                             the per-phase timing split (implies --cache)
//   --cache-dir DIR           persistent flowpipe cache (DESIGN.md §15):
//                             adds an on-disk tier behind the memory tier
//                             so a re-run of the same configuration warm-
//                             starts from the previous run's flowpipes,
//                             bit for bit (implies --cache). Corrupt or
//                             stale records degrade to a cold start; an
//                             unwritable directory is an error (exit 1)
//   --reuse-prefix            (verify) child cells of the X_I search reuse
//                             the parent's symbolic flowpipe prefix
//   --sym-rem                 symbolic remainder queue for TM verifiers
//                             (Flow*-style; sound, typically tighter, only
//                             containment-comparable with queue-off runs)
//   --sym-queue N             queue capacity before a flush-to-interval
//                             (default 1000, as in ReachNN; implies
//                             --sym-rem)
//   --substeps N              TM integration substeps per control period
//                             (default 2; must be >= 1)
//   --order N                 TM truncation order (default 3; must be >= 1)
//   --adaptive                adaptive step-size / order control for TM
//                             verifiers (DESIGN.md §14): per-substep h and
//                             order are chosen from computed signals, with
//                             accept/reject retries; deterministic and
//                             bit-identical across threads, batch widths,
//                             and lane backends
//   --adaptive-rtol X         relative defect tolerance steering the
//                             adaptive controller (default 1e-2; implies
//                             --adaptive)
//   --verbose                 print TM integration counters (substeps, h
//                             range, rejects, order changes, reinits,
//                             symbolic-queue flushes)
//   --grad                    (learn) analytic forward-mode gradients
//                             through the TM verifier (one dual pass per
//                             iteration instead of SPSA probe pairs);
//                             unsupported configurations warn on stderr
//                             and fall back to SPSA unchanged
// Search options (dwv search; results are bit-identical at any sharding):
//   --depth N                 maximum bisection depth (default 7; <= 62)
//   --shards K                run K subtree shards in this process, each
//                             with its own work-stealing pool (--threads
//                             is the TOTAL budget, split across shards)
//   --shard I/K               run ONLY subtree shard I of K (one process
//                             of a K-process run; --threads is per
//                             process); requires --out, merged later
//   --shard-grain N           frontier cells per shard before the
//                             deterministic prefix split (default 8)
//   --merge F1,F2,...         merge K shard files into the final result
//                             (bit-identical to a single-process run)
//   --out FILE                write the result: a shard file under
//                             --shard, the merged/complete search result
//                             otherwise (same bits => same file bytes)
//   --checkpoint FILE         append-only snapshot file; an existing
//                             valid checkpoint of the same configuration
//                             resumes the search (kill -9 safe: torn
//                             tails are truncated, final bits identical)
//   --checkpoint-every N      snapshot/progress cadence in cells
//                             (default 256)
//   --progress                print the growing certified coverage at
//                             every round boundary (anytime output)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/initial_set.hpp"
#include "core/learner.hpp"
#include "core/search_shard.hpp"
#include "parallel/pool.hpp"
#include "linalg/expm.hpp"
#include "core/verdict.hpp"
#include "nn/serialize.hpp"
#include "ode/expr_system.hpp"
#include "ode/reachnn_suite.hpp"
#include "reach/cache.hpp"
#include "reach/linear_reach.hpp"
#include "reach/tm_flowpipe.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace dwv;

struct Args {
  std::string command;
  std::string benchmark;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  long get_long(const std::string& key, long dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : std::strtol(it->second.c_str(),
                                                    nullptr, 10);
  }
  double get_double(const std::string& key, double dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : std::strtod(it->second.c_str(),
                                                    nullptr);
  }
};

// --batch K / --no-batch → lane-batch width fed to LearnerOptions (SPSA
// probe groups) and InitialSetOptions (refinement cells). 0 = auto
// (interval::lanes::kWidth), 1 = the sequential pre-batching path.
std::size_t batch_width(const Args& args) {
  if (args.options.count("--no-batch")) return 1;
  return static_cast<std::size_t>(args.get_long("--batch", 0));
}

int usage() {
  std::fprintf(stderr,
               "usage: dwv <learn|verify|search|simulate|cache-compact|list> "
               "[benchmark] [--option value]...\n"
               "see the header of tools/dwv_cli.cpp for details\n");
  return 2;
}

ode::Benchmark make_benchmark(const std::string& name) {
  if (name == "acc") return ode::make_acc_benchmark();
  if (name == "oscillator") return ode::make_oscillator_benchmark();
  if (name == "sys3d" || name == "b5") return ode::make_3d_benchmark();
  if (name == "b1") return ode::make_b1_benchmark();
  if (name == "b2") return ode::make_b2_benchmark();
  if (name == "b3") return ode::make_b3_benchmark();
  if (name == "b4") return ode::make_b4_benchmark();
  if (name == "pendulum") return ode::make_pendulum_benchmark();
  throw std::runtime_error("unknown benchmark: " + name);
}

// --sym-rem / --sym-queue N → TmReachOptions symbolic remainder queue
// (DESIGN.md §12). --sym-queue implies --sym-rem; the default queue size
// matches ReachNN's setQueueSize(1000).
reach::TmReachOptions tm_options(const Args& args) {
  reach::TmReachOptions opt;
  if (args.options.count("--sym-rem") || args.options.count("--sym-queue")) {
    opt.symbolic_remainder = true;
    opt.sym_queue_size =
        static_cast<std::size_t>(args.get_long("--sym-queue", 1000));
  }
  opt.substeps = static_cast<std::uint32_t>(
      args.get_long("--substeps", static_cast<long>(opt.substeps)));
  opt.order = static_cast<std::uint32_t>(
      args.get_long("--order", static_cast<long>(opt.order)));
  if (args.options.count("--adaptive") ||
      args.options.count("--adaptive-rtol")) {
    opt.adaptive = true;
    opt.adaptive_rtol = args.get_double("--adaptive-rtol", opt.adaptive_rtol);
  }
  return opt;
}

void print_tm_stats(const reach::TmReachStats& s) {
  if (s.substeps == 0) return;  // not a TM verifier run
  std::printf(
      "tm: %zu substeps, h in [%g, %g], %zu rejects, %zu order escalations, "
      "%zu order reductions, %zu reinits, %zu sym flushes\n",
      s.substeps, s.h_min, s.h_max, s.rejects, s.order_escalations,
      s.order_reductions, s.reinits, s.sym_flushes);
}

reach::VerifierPtr make_verifier(const ode::Benchmark& bench,
                                 const std::string& kind,
                                 const nn::Controller* ctrl,
                                 const reach::TmReachOptions& tm_opt) {
  std::string k = kind;
  const bool linear_ctrl =
      dynamic_cast<const nn::LinearController*>(ctrl) != nullptr;
  if (k.empty()) {
    if (bench.name == "acc" && linear_ctrl) {
      k = "linear";
    } else if (linear_ctrl) {
      k = "linctrl";  // linear feedback through the TM engine
    } else {
      k = "polar";
    }
  }
  if (k == "linear") {
    return std::make_shared<reach::LinearVerifier>(bench.system, bench.spec);
  }
  reach::ControlAbstractionPtr abs;
  if (k == "linctrl") {
    abs = std::make_shared<reach::LinearAbstraction>();
  } else if (k == "polar") {
    abs = std::make_shared<reach::PolarAbstraction>();
  } else if (k == "reachnn") {
    abs = std::make_shared<reach::ReachNnAbstraction>();
  } else if (k == "interval") {
    abs = std::make_shared<reach::IntervalAbstraction>();
  } else if (k == "poly") {
    abs = std::make_shared<reach::PolynomialAbstraction>();
  } else {
    throw std::runtime_error("unknown verifier: " + k);
  }
  return std::make_shared<reach::TmVerifier>(bench.system, bench.spec, abs,
                                             tm_opt);
}

nn::ControllerPtr default_controller(const ode::Benchmark& bench,
                                     std::uint64_t seed) {
  if (bench.name == "pendulum") {
    return std::make_unique<nn::LinearController>(
        linalg::Mat(1, bench.system->state_dim()));
  }
  if (bench.name == "acc") {
    return std::make_unique<nn::LinearController>(
        linalg::Mat(1, bench.system->state_dim()));
  }
  const double scale = bench.name == "oscillator" ? 2.0 : 1.0;
  auto ctrl = std::make_unique<nn::MlpController>(
      std::vector<std::size_t>{bench.system->state_dim(), 6, 1}, scale,
      nn::Activation::kTanh, nn::Activation::kTanh);
  std::mt19937_64 rng(seed * 7 + 1);
  ctrl->init_random(rng, 0.4);
  return ctrl;
}

core::LearnerOptions learner_options(const ode::Benchmark& bench,
                                     const Args& args) {
  core::LearnerOptions opt;
  opt.metric = args.get("--metric", "G") == "W"
                   ? core::MetricKind::kWasserstein
                   : core::MetricKind::kGeometric;
  opt.alpha = opt.metric == core::MetricKind::kWasserstein ? 0.2 : 1.0;
  opt.require_containment = true;
  opt.seed = static_cast<std::uint64_t>(args.get_long("--seed", 1));
  if (bench.name == "acc") {
    opt.max_iters = 400;
    opt.step_size = 0.5;
    opt.perturbation = 0.05;
    opt.gradient = core::GradientMode::kSpsaAveraged;
    opt.spsa_samples = 2;
    opt.restarts = 4;
  } else {
    opt.max_iters = 240;
    opt.step_size = 0.25;
    opt.restarts = 4;
    opt.restart_scale = 0.4;
  }
  if (args.options.count("--iters")) {
    opt.max_iters = static_cast<std::size_t>(args.get_long("--iters", 200));
  }
  opt.threads = static_cast<std::size_t>(args.get_long("--threads", 0));
  opt.batch = batch_width(args);
  opt.cache = args.options.count("--cache") != 0 ||
              args.options.count("--cache-stats") != 0;
  opt.cache_dir = args.get("--cache-dir", "");
  opt.grad = args.options.count("--grad") != 0;
  return opt;
}

// A --sym-rem request the verifier cannot honor used to be silently
// ignored (the queue gates on TmDynamics::has_state_jacobian); surface
// that decision so queue-on runs are never silently queue-off.
void warn_if_sym_rem_ignored(const Args& args,
                             const reach::VerifierPtr& verifier) {
  if (!args.options.count("--sym-rem") && !args.options.count("--sym-queue")) {
    return;
  }
  const auto* tv = dynamic_cast<const reach::TmVerifier*>(verifier.get());
  if (tv == nullptr) {
    std::fprintf(stderr,
                 "dwv: warning: --sym-rem has no effect on verifier '%s' "
                 "(not a Taylor-model verifier)\n",
                 verifier->name().c_str());
    return;
  }
  if (!tv->dynamics()->has_state_jacobian()) {
    std::fprintf(stderr,
                 "dwv: warning: --sym-rem requested but the dynamics "
                 "provide no state Jacobian; the symbolic remainder queue "
                 "stays off and results match a queue-off run bit for bit\n");
  }
}

void print_cache_stats(const reach::CacheStats& s) {
  std::printf(
      "cache: %llu hits / %llu lookups (%.1f%%), %llu insertions, "
      "%llu evictions\n",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.lookups()), 100.0 * s.hit_rate(),
      static_cast<unsigned long long>(s.insertions),
      static_cast<unsigned long long>(s.evictions));
  std::printf("cache: %.3fs bookkeeping overhead, %.3fs miss compute\n",
              s.overhead_seconds, s.miss_compute_seconds);
  if (s.disk_hits != 0 || s.disk_entries != 0 ||
      s.disk_bytes_written != 0) {
    std::printf(
        "disk:  %llu hits, %llu records, %llu bytes read, "
        "%llu bytes written\n",
        static_cast<unsigned long long>(s.disk_hits),
        static_cast<unsigned long long>(s.disk_entries),
        static_cast<unsigned long long>(s.disk_bytes_read),
        static_cast<unsigned long long>(s.disk_bytes_written));
  }
  const linalg::ZohCacheStats z = linalg::zoh_cache_stats();
  std::printf("zoh:   %llu hits / %llu lookups\n",
              static_cast<unsigned long long>(z.hits),
              static_cast<unsigned long long>(z.hits + z.misses));
}

// "[lo,hi]x[lo,hi]..." — compact box rendering for the benchmark listing
// (goal boxes may leave dimensions unconstrained, which prints as inf).
std::string fmt_box(const geom::Box& b) {
  std::string s;
  char buf[64];
  for (std::size_t i = 0; i < b.dim(); ++i) {
    std::snprintf(buf, sizeof buf, "%s[%g,%g]", i == 0 ? "" : "x",
                  b.bounds()[i].lo(), b.bounds()[i].hi());
    s += buf;
  }
  return s;
}

int cmd_list() {
  struct Row {
    const char* name;
    const char* desc;
  };
  // State dimension, X0, and goal box come from the registered benchmark
  // itself, so the listing is enough to pick shard/depth settings for
  // `dwv search` without reading the scenario source.
  const Row rows[] = {
      {"acc", "linear adaptive cruise control (DAC'22 paper)"},
      {"oscillator", "Van der Pol oscillator (DAC'22 paper)"},
      {"sys3d", "3-D numerical system, alias b5 (DAC'22 paper / ReachNN)"},
      {"b1", "ReachNN suite benchmark 1"},
      {"b2", "ReachNN suite benchmark 2"},
      {"b3", "ReachNN suite benchmark 3"},
      {"b4", "ReachNN suite benchmark 4"},
      {"pendulum", "damped pendulum (expression-tree dynamics)"},
  };
  std::printf("built-in benchmarks:\n");
  for (const Row& row : rows) {
    const ode::Benchmark bench = make_benchmark(row.name);
    std::printf("  %-10s  %s\n", row.name, row.desc);
    std::printf("  %-10s  dim %zu  X0 %s  goal %s\n", "",
                bench.system->state_dim(), fmt_box(bench.spec.x0).c_str(),
                fmt_box(bench.spec.goal).c_str());
  }
  return 0;
}

int cmd_learn(const Args& args) {
  const ode::Benchmark bench = make_benchmark(args.benchmark);
  nn::ControllerPtr ctrl = default_controller(
      bench, static_cast<std::uint64_t>(args.get_long("--seed", 1)));
  const auto verifier =
      make_verifier(bench, args.get("--verifier", ""), ctrl.get(),
                    tm_options(args));
  warn_if_sym_rem_ignored(args, verifier);
  const core::LearnerOptions opt = learner_options(bench, args);

  std::printf("benchmark %s, verifier %s, metric %s, seed %llu\n",
              bench.name.c_str(), verifier->name().c_str(),
              core::to_string(opt.metric).c_str(),
              static_cast<unsigned long long>(opt.seed));
  core::Learner learner(verifier, bench.spec, opt);
  const core::LearnResult res = learner.learn(*ctrl);
  std::printf("%s after %zu iterations (%zu verifier calls, %.1fs)\n",
              res.success ? "CONVERGED" : "did not converge",
              res.iterations, res.verifier_calls, res.verifier_seconds);
  if (args.options.count("--cache-stats")) print_cache_stats(res.cache_stats);
  if (args.options.count("--verbose")) {
    print_tm_stats(res.final_flowpipe.tm_stats);
  }
  if (!res.success) return 1;

  const sim::McStats mc = sim::monte_carlo_rates(
      *bench.system, *ctrl, bench.spec,
      static_cast<std::size_t>(args.get_long("--samples", 500)), 99);
  std::printf("simulation: SC %.1f%%  GR %.1f%%\n", 100.0 * mc.safe_rate,
              100.0 * mc.goal_rate);

  const std::string out = args.get("--controller", "");
  if (!out.empty()) {
    nn::save_controller_file(out, *ctrl);
    std::printf("controller saved to %s\n", out.c_str());
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const ode::Benchmark bench = make_benchmark(args.benchmark);
  const std::string path = args.get("--controller", "");
  if (path.empty()) {
    std::fprintf(stderr, "verify requires --controller FILE\n");
    return 2;
  }
  const nn::ControllerPtr ctrl = nn::load_controller_file(path);
  reach::VerifierPtr verifier =
      make_verifier(bench, args.get("--verifier", ""), ctrl.get(),
                    tm_options(args));
  warn_if_sym_rem_ignored(args, verifier);
  std::shared_ptr<reach::FlowpipeCache> cache;
  if (args.options.count("--cache") || args.options.count("--cache-stats") ||
      args.options.count("--cache-dir")) {
    reach::FlowpipeCache::Config cfg;
    cfg.dir = args.get("--cache-dir", "");
    auto cached =
        std::make_shared<const reach::CachingVerifier>(verifier, cfg);
    cache = cached->cache();
    verifier = std::move(cached);
  }
  std::printf("verifying %s with %s...\n", ctrl->describe().c_str(),
              verifier->name().c_str());
  const core::VerificationReport rep = core::verify_controller(
      *verifier, *bench.system, *ctrl, bench.spec);
  std::printf("verdict: %s (%s)\n", core::to_string(rep.verdict).c_str(),
              rep.detail.c_str());
  if (args.options.count("--verbose")) print_tm_stats(rep.tm_stats);
  if (rep.verdict != core::Verdict::kReachAvoid &&
      rep.facts.safe_certified) {
    // Try the initial-set search: goal-reaching may hold for part of X0.
    core::InitialSetOptions iopt;
    iopt.threads = static_cast<std::size_t>(args.get_long("--threads", 0));
    iopt.batch = batch_width(args);
    iopt.reuse_parent_prefix = args.options.count("--reuse-prefix") != 0;
    const core::InitialSetResult xi =
        core::search_initial_set(*verifier, bench.spec, *ctrl, iopt);
    std::printf("X_I search: %.1f%% of X0 certified (%zu cells)\n",
                100.0 * xi.coverage, xi.certified.size());
  }
  if (cache && args.options.count("--cache-stats")) {
    print_cache_stats(cache->stats());
  }
  return rep.verdict == core::Verdict::kReachAvoid ? 0 : 1;
}

// dwv search — the sharded/checkpointable/anytime X_I search driver.
// Three modes sharing one configuration surface:
//   (default)      in-process search, optionally over --shards K subtrees
//   --shard I/K    one subtree of a K-process run, written to --out
//   --merge a,b,.. ordered-replay merge of K shard files
// All three produce bit-identical certified sets, so `cmp` on the --out
// files IS the cross-mode correctness check (CI runs exactly that).
int cmd_search(const Args& args) {
  const ode::Benchmark bench = make_benchmark(args.benchmark);
  const std::string path = args.get("--controller", "");
  const nn::ControllerPtr ctrl =
      path.empty()
          ? default_controller(
                bench, static_cast<std::uint64_t>(args.get_long("--seed", 1)))
          : nn::load_controller_file(path);
  reach::VerifierPtr verifier = make_verifier(
      bench, args.get("--verifier", ""), ctrl.get(), tm_options(args));
  warn_if_sym_rem_ignored(args, verifier);

  core::ShardSearchOptions sopt;
  sopt.base.max_depth =
      static_cast<std::size_t>(args.get_long("--depth", 7));
  sopt.base.batch = batch_width(args);
  sopt.base.reuse_parent_prefix = args.options.count("--reuse-prefix") != 0;
  sopt.shards = static_cast<std::size_t>(args.get_long("--shards", 1));
  sopt.prefix_grain =
      static_cast<std::size_t>(args.get_long("--shard-grain", 8));
  sopt.checkpoint_file = args.get("--checkpoint", "");
  sopt.checkpoint_every =
      static_cast<std::size_t>(args.get_long("--checkpoint-every", 256));
  if (args.options.count("--progress")) {
    sopt.progress = [](const core::ShardSearchProgress& p) {
      std::printf(
          "progress: round %zu  coverage >= %.2f%%  (%zu certified, "
          "%zu rejected, %zu pending, %zu calls)\n",
          p.rounds, 100.0 * p.coverage, p.certified_cells, p.rejected_cells,
          p.pending_cells, p.verifier_calls);
      std::fflush(stdout);
      return true;
    };
  }

  const std::string shard_arg = args.get("--shard", "");
  if (!shard_arg.empty()) {
    std::size_t i = 0, k = 0;
    if (std::sscanf(shard_arg.c_str(), "%zu/%zu", &i, &k) != 2 || k == 0 ||
        i >= k) {
      std::fprintf(stderr, "--shard expects I/K with I < K (got '%s')\n",
                   shard_arg.c_str());
      return 2;
    }
    sopt.shard_index = i;
    sopt.shards = k;
  }
  const bool one_shard =
      sopt.shard_index != core::ShardSearchOptions::kAllShards;

  // --threads: total budget in-process (split across shards), per process
  // under --shard (each of the K processes gets its own pool).
  const std::size_t requested = parallel::resolve_threads(
      static_cast<std::size_t>(args.get_long("--threads", 0)));
  sopt.base.threads =
      one_shard ? requested : std::max<std::size_t>(1, requested / sopt.shards);

  std::shared_ptr<reach::FlowpipeCache> cache;
  if (args.options.count("--cache") || args.options.count("--cache-stats") ||
      args.options.count("--cache-dir")) {
    reach::FlowpipeCache::Config cfg;
    cfg.dir = args.get("--cache-dir", "");
    if (one_shard && !cfg.dir.empty()) {
      // Each shard process salts its own disk shard logs, so K processes
      // can share one cache directory without interleaving appends.
      cfg.disk_salt_mix = reach::hash_string(0x58495f5348415244ull, shard_arg);
    }
    auto cached = std::make_shared<const reach::CachingVerifier>(verifier, cfg);
    cache = cached->cache();
    verifier = std::move(cached);
  }

  const std::string out = args.get("--out", "");
  const std::uint64_t fingerprint =
      core::xi_search_fingerprint(*verifier, bench.spec, *ctrl, sopt.base);

  const std::string merge_arg = args.get("--merge", "");
  if (!merge_arg.empty()) {
    std::vector<core::ShardResult> parts;
    std::size_t start = 0;
    while (start <= merge_arg.size()) {
      const std::size_t comma = merge_arg.find(',', start);
      const std::string file =
          merge_arg.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
      if (!file.empty()) parts.push_back(core::load_shard_result_file(file));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    for (const core::ShardResult& p : parts) {
      if (p.fingerprint != fingerprint) {
        std::fprintf(stderr,
                     "error: a shard file was produced by a different "
                     "search configuration than this command line\n");
        return 1;
      }
    }
    const core::InitialSetResult res =
        core::merge_shard_results(bench.spec, parts);
    std::printf(
        "merged %zu shards: %.1f%% of X0 certified (%zu cells, %zu "
        "rejected, %zu verifier calls)\n",
        parts.size(), 100.0 * res.coverage, res.certified.size(),
        res.rejected.size(), res.verifier_calls);
    if (!out.empty()) core::save_initial_set_result_file(out, fingerprint, res);
    return 0;
  }

  if (one_shard) {
    if (out.empty()) {
      std::fprintf(stderr, "--shard requires --out FILE (the shard result "
                           "to merge later)\n");
      return 2;
    }
    const core::ShardResult sr =
        core::search_initial_set_shard(*verifier, bench.spec, *ctrl, sopt);
    core::save_shard_result_file(out, sr);
    std::printf("shard %u/%u: %zu terminal cells, %llu verifier calls%s\n",
                sr.shard_index, sr.shards, sr.records.size(),
                static_cast<unsigned long long>(sr.verifier_calls),
                sr.complete ? "" : " (INCOMPLETE: cancelled)");
    if (cache && args.options.count("--cache-stats")) {
      print_cache_stats(cache->stats());
    }
    return 0;
  }

  const core::InitialSetResult res =
      core::search_initial_set_sharded(*verifier, bench.spec, *ctrl, sopt);
  std::printf(
      "X_I search: %.1f%% of X0 certified (%zu cells, %zu rejected, "
      "%zu verifier calls)\n",
      100.0 * res.coverage, res.certified.size(), res.rejected.size(),
      res.verifier_calls);
  if (!out.empty()) core::save_initial_set_result_file(out, fingerprint, res);
  if (cache && args.options.count("--cache-stats")) {
    print_cache_stats(cache->stats());
  }
  return 0;
}

int cmd_cache_compact(const Args& args) {
  const std::string dir = args.get("--cache-dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "cache-compact requires --cache-dir DIR\n");
    return 2;
  }
  const reach::CacheCompactionStats s = reach::compact_cache_dir(dir);
  std::printf(
      "compacted %zu shard logs: %zu records kept, %zu dropped, "
      "%zu stale files deleted\n",
      s.files, s.records_kept, s.records_dropped, s.stale_files_deleted);
  std::printf("%llu -> %llu bytes\n",
              static_cast<unsigned long long>(s.bytes_before),
              static_cast<unsigned long long>(s.bytes_after));
  return 0;
}

int cmd_simulate(const Args& args) {
  const ode::Benchmark bench = make_benchmark(args.benchmark);
  const std::string path = args.get("--controller", "");
  if (path.empty()) {
    std::fprintf(stderr, "simulate requires --controller FILE\n");
    return 2;
  }
  const nn::ControllerPtr ctrl = nn::load_controller_file(path);
  const std::size_t samples =
      static_cast<std::size_t>(args.get_long("--samples", 500));
  const sim::McStats mc = sim::monte_carlo_rates(
      *bench.system, *ctrl, bench.spec, samples,
      static_cast<std::uint64_t>(args.get_long("--seed", 1)));
  std::printf("%zu runs: SC %.1f%%  GR %.1f%%  mean reach step %.1f\n",
              mc.samples, 100.0 * mc.safe_rate, 100.0 * mc.goal_rate,
              mc.mean_reach_step);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  int i = 2;
  if (i < argc && argv[i][0] != '-') args.benchmark = argv[i++];
  for (; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    // Options take a value; a trailing option or one followed by another
    // --option is a boolean flag (--cache, --cache-stats, --reuse-prefix).
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[argv[i]] = argv[i + 1];
      ++i;
    } else {
      args.options[argv[i]] = "1";
    }
  }

  try {
    if (args.command == "list") return cmd_list();
    if (args.command == "cache-compact") return cmd_cache_compact(args);
    if (args.benchmark.empty()) return usage();
    if (args.command == "learn") return cmd_learn(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "search") return cmd_search(args);
    if (args.command == "simulate") return cmd_simulate(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
