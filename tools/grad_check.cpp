// grad_check — CI gate for the forward-mode gradient engine.
//
// Re-runs the registered (verifier, controller) scenarios of
// tests/test_grad.cpp and compares every analytic metric gradient
// (geometric d_u/d_g, Wasserstein w_goal/w_unsafe, goal-containment
// margin) against Richardson-extrapolated central differences of the
// scalar pipeline. Exits nonzero when any relative error exceeds 1e-6 or
// when a dual value-channel bit differs from the scalar metric, so a
// kernel change that silently skews the gradients fails the Release CI
// leg even if no unit test exercises the broken path.
//
//   $ ./grad_check
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/grad_metrics.hpp"
#include "nn/controller.hpp"
#include "nn/poly_controller.hpp"
#include "ode/benchmarks.hpp"
#include "reach/control_abstraction.hpp"
#include "reach/grad_flowpipe.hpp"
#include "reach/tm_flowpipe.hpp"

using namespace dwv;
using linalg::Vec;

namespace {

// Gate: analytic vs Richardson-extrapolated FD, relative to the larger of
// the two magnitudes (floored at 1). Matches tests/test_grad.cpp.
constexpr double kGate = 1e-6;
// The metrics are piecewise smooth with basin boundaries that can sit
// exactly at a probed theta (endpoint-selection ties); h = 1e-5 keeps the
// resulting O(h) one-sided curvature term below the gate.
constexpr double kH = 1e-5;

struct Scenario {
  std::string name;
  ode::Benchmark bench;
  reach::ControlAbstractionPtr abs;
  std::shared_ptr<nn::Controller> ctrl;
  reach::TmReachOptions opt;
};

Scenario acc_linear(const Vec& theta) {
  Scenario s;
  s.name = "acc-linear";
  s.bench = ode::make_acc_benchmark();
  s.bench.spec.steps = 20;
  s.bench.spec.stop_at_goal = false;
  s.abs = std::make_shared<reach::LinearAbstraction>();
  auto ctrl = std::make_shared<nn::LinearController>(2, 1);
  ctrl->set_params(theta);
  s.ctrl = ctrl;
  return s;
}

Scenario vdp_poly(const Vec& theta) {
  Scenario s;
  s.name = "vdp-poly";
  s.bench = ode::make_oscillator_benchmark();
  s.bench.spec.steps = 10;
  s.bench.spec.stop_at_goal = false;
  s.abs = std::make_shared<reach::PolynomialAbstraction>();
  auto ctrl = std::make_shared<nn::PolynomialController>(2, 1, 2);
  ctrl->set_params(theta);
  s.ctrl = ctrl;
  return s;
}

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> v;
  v.push_back(acc_linear(Vec{-0.5, -1.2}));
  v.push_back(acc_linear(Vec{0.0, 0.0}));  // tangent-only gain entries
  v.push_back(vdp_poly(Vec{0.0, -0.4, 0.3, 0.0, 0.1, 0.0}));
  return v;
}

struct MetricValues {
  double d_u, d_g, w_goal, w_unsafe, margin;
};

MetricValues scalar_metrics_at(const Scenario& s, const reach::TmVerifier& v,
                               const Vec& theta) {
  auto probe = s.ctrl->clone();
  probe->set_params(theta);
  const reach::Flowpipe fp = v.compute(s.bench.spec.x0, *probe);
  MetricValues m{};
  if (fp.valid) {
    const core::GeometricMetrics g = core::geometric_metrics(fp, s.bench.spec);
    const core::WassersteinMetrics w =
        core::wasserstein_metrics(fp, s.bench.spec, {});
    m = {g.d_u, g.d_g, w.w_goal, w.w_unsafe,
         core::goal_containment_margin(fp, s.bench.spec)};
  } else {
    const core::GeometricMetrics g = core::geometric_penalty(s.bench.spec, fp);
    const core::WassersteinMetrics w =
        core::wasserstein_penalty(s.bench.spec, fp);
    m = {g.d_u, g.d_g, w.w_goal, w.w_unsafe, 0.0};
  }
  return m;
}

double rel_err(double analytic, double fd) {
  const double scale = std::max({std::abs(analytic), std::abs(fd), 1.0});
  return std::abs(analytic - fd) / scale;
}

int g_failures = 0;

void check(const std::string& where, double analytic, double fd) {
  const double e = rel_err(analytic, fd);
  const bool ok = e < kGate;
  if (!ok) ++g_failures;
  std::printf("%s %-40s analytic %+.9e  fd %+.9e  rel %.3e\n",
              ok ? "ok  " : "FAIL", where.c_str(), analytic, fd, e);
}

void check_value_bits(const std::string& where, double dual, double scalar) {
  if (dual == scalar) return;  // bitwise for non-NaN metric values
  ++g_failures;
  std::printf("FAIL %-40s dual value %.17g != scalar %.17g\n", where.c_str(),
              dual, scalar);
}

void run_scenario(const Scenario& s) {
  const reach::TmVerifier v(s.bench.system, s.bench.spec, s.abs, s.opt);
  if (const char* why = reach::TmGradient::unsupported_reason(v, *s.ctrl)) {
    std::printf("FAIL %-40s unsupported: %s\n", s.name.c_str(), why);
    ++g_failures;
    return;
  }
  const reach::TmGradient engine(v);
  const reach::GradFlowpipe gfp = engine.compute(s.bench.spec.x0, *s.ctrl);
  if (!gfp.fp.valid) {
    std::printf("FAIL %-40s flowpipe invalid: %s\n", s.name.c_str(),
                gfp.fp.failure.c_str());
    ++g_failures;
    return;
  }

  const core::GeometricMetricsGrad gg =
      core::geometric_metrics_grad(gfp, s.bench.spec);
  const core::WassersteinMetricsGrad wg =
      core::wasserstein_metrics_grad(gfp, s.bench.spec, {});
  const core::MetricGrad cm =
      core::goal_containment_margin_grad(gfp, s.bench.spec);

  const Vec theta = s.ctrl->params();
  const MetricValues base = scalar_metrics_at(s, v, theta);
  check_value_bits(s.name + " d_u value", gg.d_u.value, base.d_u);
  check_value_bits(s.name + " d_g value", gg.d_g.value, base.d_g);
  check_value_bits(s.name + " w_goal value", wg.w_goal.value, base.w_goal);
  check_value_bits(s.name + " w_unsafe value", wg.w_unsafe.value,
                   base.w_unsafe);
  check_value_bits(s.name + " margin value", cm.value, base.margin);

  for (std::size_t i = 0; i < theta.size(); ++i) {
    const auto central = [&](double step) {
      Vec tp = theta, tm = theta;
      tp[i] += step;
      tm[i] -= step;
      const MetricValues mp = scalar_metrics_at(s, v, tp);
      const MetricValues mm = scalar_metrics_at(s, v, tm);
      const double inv = 1.0 / (2.0 * step);
      return MetricValues{(mp.d_u - mm.d_u) * inv, (mp.d_g - mm.d_g) * inv,
                          (mp.w_goal - mm.w_goal) * inv,
                          (mp.w_unsafe - mm.w_unsafe) * inv,
                          (mp.margin - mm.margin) * inv};
    };
    const MetricValues d1 = central(kH);
    const MetricValues d2 = central(kH / 2.0);
    const auto rich = [](double a, double b) { return (4.0 * b - a) / 3.0; };
    const std::string at = s.name + "[" + std::to_string(i) + "]";
    check(at + " d(d_u)", gg.d_u.grad[i], rich(d1.d_u, d2.d_u));
    check(at + " d(d_g)", gg.d_g.grad[i], rich(d1.d_g, d2.d_g));
    check(at + " d(w_goal)", wg.w_goal.grad[i], rich(d1.w_goal, d2.w_goal));
    check(at + " d(w_unsafe)", wg.w_unsafe.grad[i],
          rich(d1.w_unsafe, d2.w_unsafe));
    check(at + " d(margin)", cm.grad[i], rich(d1.margin, d2.margin));
  }
}

}  // namespace

int main() {
  for (const Scenario& s : all_scenarios()) run_scenario(s);
  if (g_failures > 0) {
    std::printf("grad_check: %d FAILURE(S)\n", g_failures);
    return 1;
  }
  std::printf("grad_check: all gradients within %.0e of finite differences\n",
              kGate);
  return 0;
}
