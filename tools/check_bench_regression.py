#!/usr/bin/env python3
"""Perf-regression gate for the range-bounding microbenchmarks.

Compares the current BENCH_range_bound.json against the committed baseline
and fails if range bounding regressed by more than 20%.

Raw ns/query numbers do not transfer between machines (the committed
baseline comes from a developer box; CI runs on whatever runner generation
gets scheduled), so the gate compares the *_speedup ratios instead: engine
vs naive measured on the SAME machine in the SAME run. A ratio more than
20% below the committed one means the engine's relative advantage shrank —
a genuine code regression, not runner noise.

Usage: check_bench_regression.py <baseline.json> <current.json>
"""

import json
import sys

# Current speedup must stay within 20% of the committed baseline ratio.
THRESHOLD = 0.8


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <baseline.json> <current.json>")
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        current = json.load(f)

    checked = 0
    failed = False
    for key in sorted(baseline):
        if not key.endswith("_speedup"):
            continue
        checked += 1
        ref = baseline[key]
        val = current.get(key)
        if val is None:
            print(f"FAIL {key}: missing from current results")
            failed = True
            continue
        ok = val >= THRESHOLD * ref
        mark = "ok  " if ok else "FAIL"
        print(f"{mark} {key}: {val:.3f}x (baseline {ref:.3f}x, "
              f"floor {THRESHOLD * ref:.3f}x)")
        failed = failed or not ok

    if checked == 0:
        print("FAIL: baseline contains no *_speedup keys to check")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
