#!/usr/bin/env python3
"""Perf-regression gate for the range-bounding microbenchmarks.

Compares the current BENCH_range_bound.json against the committed baseline
and fails if range bounding regressed by more than 20%.

Raw ns/query numbers do not transfer between machines (the committed
baseline comes from a developer box; CI runs on whatever runner generation
gets scheduled), so the gate compares the *_speedup ratios instead: engine
vs naive measured on the SAME machine in the SAME run. A ratio more than
20% below the committed one means the engine's relative advantage shrank —
a genuine code regression, not runner noise.

Usage: check_bench_regression.py [--threshold R] [--history FILE]
                                 <baseline.json> <current.json>

--threshold sets the allowed fraction of the baseline ratio (default 0.8,
i.e. at most a 20% relative regression). End-to-end benches that time whole
search/learn runs carry more scheduler noise than the tight microbench
loops and use a looser floor.

--history appends one JSON line per invocation to FILE: the benchmark file
name, every checked key with its current and baseline value, and the gate
verdict. The file is JSONL so successive CI runs accumulate a perf
time-series that survives baseline bumps (each bump resets the *committed*
numbers, but the history keeps the raw trail).

--floor KEY=VALUE (repeatable) additionally pins an ABSOLUTE minimum for a
speedup key, independent of the committed baseline. Relative thresholds
drift with every baseline bump; a floor encodes a hard promise ("adaptive
never loses more than 5% on the oscillator") that survives them.
"""

import json
import os
import sys

# Default: current speedup must stay within 20% of the committed baseline.
THRESHOLD = 0.8


def main(argv):
    threshold = THRESHOLD
    history_path = None
    floors = {}
    args = argv[1:]
    usage = (f"usage: {argv[0]} [--threshold R] [--history FILE] "
             f"[--floor KEY=VALUE ...] <baseline.json> <current.json>")
    while args and args[0].startswith("--"):
        if args[0] == "--threshold" and len(args) >= 2:
            threshold = float(args[1])
            args = args[2:]
        elif args[0] == "--history" and len(args) >= 2:
            history_path = args[1]
            args = args[2:]
        elif args[0] == "--floor" and len(args) >= 2 and "=" in args[1]:
            key, _, value = args[1].partition("=")
            floors[key] = float(value)
            args = args[2:]
        else:
            print(usage)
            return 2
    if len(args) != 2:
        print(usage)
        return 2
    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        current = json.load(f)

    checked = 0
    failed = False
    record = {}
    for key in sorted(baseline):
        if key.endswith("_speedup"):
            checked += 1
            ref = baseline[key]
            val = current.get(key)
            if val is None:
                print(f"FAIL {key}: missing from current results")
                failed = True
                continue
            record[key] = {"current": val, "baseline": ref}
            lo = max(threshold * ref, floors.get(key, 0.0))
            ok = val >= lo
            mark = "ok  " if ok else "FAIL"
            print(f"{mark} {key}: {val:.3f}x (baseline {ref:.3f}x, "
                  f"floor {lo:.3f}x)")
            failed = failed or not ok
        elif key.endswith("_tightness_ratio"):
            # Enclosure-width ratios (queued / conventional): smaller is
            # tighter. Hard cap at 1.0 (the queued mode's contract), plus
            # the same relative-regression guard as the speedups — the
            # ratio may not creep up past baseline/threshold.
            checked += 1
            ref = baseline[key]
            val = current.get(key)
            if val is None:
                print(f"FAIL {key}: missing from current results")
                failed = True
                continue
            record[key] = {"current": val, "baseline": ref}
            ceiling = min(1.0, ref / threshold)
            ok = val <= ceiling
            mark = "ok  " if ok else "FAIL"
            print(f"{mark} {key}: {val:.3f} (baseline {ref:.3f}, "
                  f"ceiling {ceiling:.3f})")
            failed = failed or not ok

    if history_path is not None and record:
        line = {
            "bench": os.path.basename(args[1]),
            "threshold": threshold,
            "passed": not failed,
            "keys": record,
        }
        with open(history_path, "a") as f:
            f.write(json.dumps(line, sort_keys=True) + "\n")

    if checked == 0:
        print("FAIL: baseline contains no *_speedup keys to check")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
