# Empty compiler generated dependencies file for bench_ablation_reinit.
# This may be replaced when dependencies are built.
