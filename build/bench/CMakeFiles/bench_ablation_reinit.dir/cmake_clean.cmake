file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reinit.dir/bench_ablation_reinit.cpp.o"
  "CMakeFiles/bench_ablation_reinit.dir/bench_ablation_reinit.cpp.o.d"
  "bench_ablation_reinit"
  "bench_ablation_reinit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reinit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
