# Empty dependencies file for bench_fig5_oscillator_learning.
# This may be replaced when dependencies are built.
