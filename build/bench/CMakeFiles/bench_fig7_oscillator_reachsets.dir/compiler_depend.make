# Empty compiler generated dependencies file for bench_fig7_oscillator_reachsets.
# This may be replaced when dependencies are built.
