file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_oscillator_reachsets.dir/bench_fig7_oscillator_reachsets.cpp.o"
  "CMakeFiles/bench_fig7_oscillator_reachsets.dir/bench_fig7_oscillator_reachsets.cpp.o.d"
  "bench_fig7_oscillator_reachsets"
  "bench_fig7_oscillator_reachsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_oscillator_reachsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
