file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_acc_reachsets.dir/bench_fig6_acc_reachsets.cpp.o"
  "CMakeFiles/bench_fig6_acc_reachsets.dir/bench_fig6_acc_reachsets.cpp.o.d"
  "bench_fig6_acc_reachsets"
  "bench_fig6_acc_reachsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_acc_reachsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
