# Empty compiler generated dependencies file for bench_fig6_acc_reachsets.
# This may be replaced when dependencies are built.
