# Empty dependencies file for bench_table1_3d.
# This may be replaced when dependencies are built.
