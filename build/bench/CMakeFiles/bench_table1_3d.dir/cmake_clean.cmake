file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_3d.dir/bench_table1_3d.cpp.o"
  "CMakeFiles/bench_table1_3d.dir/bench_table1_3d.cpp.o.d"
  "bench_table1_3d"
  "bench_table1_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
