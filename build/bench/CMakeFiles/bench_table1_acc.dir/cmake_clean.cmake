file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_acc.dir/bench_table1_acc.cpp.o"
  "CMakeFiles/bench_table1_acc.dir/bench_table1_acc.cpp.o.d"
  "bench_table1_acc"
  "bench_table1_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
