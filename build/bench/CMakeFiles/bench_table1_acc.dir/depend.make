# Empty dependencies file for bench_table1_acc.
# This may be replaced when dependencies are built.
