file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_landscape.dir/bench_metric_landscape.cpp.o"
  "CMakeFiles/bench_metric_landscape.dir/bench_metric_landscape.cpp.o.d"
  "bench_metric_landscape"
  "bench_metric_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
