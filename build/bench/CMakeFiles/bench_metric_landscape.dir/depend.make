# Empty dependencies file for bench_metric_landscape.
# This may be replaced when dependencies are built.
