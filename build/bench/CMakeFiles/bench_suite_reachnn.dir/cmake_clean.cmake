file(REMOVE_RECURSE
  "CMakeFiles/bench_suite_reachnn.dir/bench_suite_reachnn.cpp.o"
  "CMakeFiles/bench_suite_reachnn.dir/bench_suite_reachnn.cpp.o.d"
  "bench_suite_reachnn"
  "bench_suite_reachnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite_reachnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
