# Empty compiler generated dependencies file for bench_suite_reachnn.
# This may be replaced when dependencies are built.
