file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_3d_reachsets.dir/bench_fig8_3d_reachsets.cpp.o"
  "CMakeFiles/bench_fig8_3d_reachsets.dir/bench_fig8_3d_reachsets.cpp.o.d"
  "bench_fig8_3d_reachsets"
  "bench_fig8_3d_reachsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_3d_reachsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
