# Empty dependencies file for bench_fig8_3d_reachsets.
# This may be replaced when dependencies are built.
