file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gradient.dir/bench_ablation_gradient.cpp.o"
  "CMakeFiles/bench_ablation_gradient.dir/bench_ablation_gradient.cpp.o.d"
  "bench_ablation_gradient"
  "bench_ablation_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
