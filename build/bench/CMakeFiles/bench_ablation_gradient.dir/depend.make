# Empty dependencies file for bench_ablation_gradient.
# This may be replaced when dependencies are built.
