# Empty dependencies file for bench_controller_families.
# This may be replaced when dependencies are built.
