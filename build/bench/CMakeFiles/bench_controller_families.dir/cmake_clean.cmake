file(REMOVE_RECURSE
  "CMakeFiles/bench_controller_families.dir/bench_controller_families.cpp.o"
  "CMakeFiles/bench_controller_families.dir/bench_controller_families.cpp.o.d"
  "bench_controller_families"
  "bench_controller_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controller_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
