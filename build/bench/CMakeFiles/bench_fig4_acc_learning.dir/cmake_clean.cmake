file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_acc_learning.dir/bench_fig4_acc_learning.cpp.o"
  "CMakeFiles/bench_fig4_acc_learning.dir/bench_fig4_acc_learning.cpp.o.d"
  "bench_fig4_acc_learning"
  "bench_fig4_acc_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_acc_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
