# Empty compiler generated dependencies file for bench_fig4_acc_learning.
# This may be replaced when dependencies are built.
