file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_oscillator.dir/bench_table1_oscillator.cpp.o"
  "CMakeFiles/bench_table1_oscillator.dir/bench_table1_oscillator.cpp.o.d"
  "bench_table1_oscillator"
  "bench_table1_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
