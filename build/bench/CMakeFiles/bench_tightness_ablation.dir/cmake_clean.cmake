file(REMOVE_RECURSE
  "CMakeFiles/bench_tightness_ablation.dir/bench_tightness_ablation.cpp.o"
  "CMakeFiles/bench_tightness_ablation.dir/bench_tightness_ablation.cpp.o.d"
  "bench_tightness_ablation"
  "bench_tightness_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tightness_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
