# Empty dependencies file for acc_cruise.
# This may be replaced when dependencies are built.
