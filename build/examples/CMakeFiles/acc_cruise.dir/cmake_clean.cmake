file(REMOVE_RECURSE
  "CMakeFiles/acc_cruise.dir/acc_cruise.cpp.o"
  "CMakeFiles/acc_cruise.dir/acc_cruise.cpp.o.d"
  "acc_cruise"
  "acc_cruise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acc_cruise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
