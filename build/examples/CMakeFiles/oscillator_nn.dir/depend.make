# Empty dependencies file for oscillator_nn.
# This may be replaced when dependencies are built.
