file(REMOVE_RECURSE
  "CMakeFiles/oscillator_nn.dir/oscillator_nn.cpp.o"
  "CMakeFiles/oscillator_nn.dir/oscillator_nn.cpp.o.d"
  "oscillator_nn"
  "oscillator_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscillator_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
